"""Render MODis artifacts as executable SQL text.

Section 3 asserts the operator set is SPJ-expressible; this module is the
constructive proof. It compiles:

* literal predicates (:class:`~repro.relational.Literal` /
  :class:`~repro.relational.Conjunction`) into WHERE conditions;
* the ⊖ operator into the SELECT that keeps the surviving rows, with the
  engine's null semantics preserved (a null cell never satisfies a
  literal, so reduction never removes null rows);
* the ⊕ operator into a null-padded ``UNION ALL`` (row augmentation) or a
  filtered ``LEFT JOIN`` (join-flavoured augmentation);
* any transducer state into its **provenance query** — the single SELECT
  that re-derives the state's dataset from the universal table ``D_U``.

Every emitted string parses and runs on :mod:`repro.sql.executor`; tests
assert that the provenance query reproduces
``space.materialize(bits)`` cell for cell.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..exceptions import SQLError
from ..relational.expressions import Conjunction, Literal
from .tokens import KEYWORDS

_IDENT_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")

_OP_TO_SQL = {
    "==": "=",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


def quote_ident(name: str) -> str:
    """Quote an identifier when it is not a plain, non-keyword word."""
    if not name:
        raise SQLError("cannot quote an empty identifier")
    plain = (
        not name[0].isdigit()
        and all(c in _IDENT_OK for c in name)
        and name.upper() not in KEYWORDS
    )
    if plain:
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def sql_literal(value: Any) -> str:
    """Render a Python value as a SQL constant (round-trips through the
    tokenizer: numbers via ``repr``, strings with ``''`` escaping)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    raise SQLError(f"cannot render {type(value).__name__} as a SQL literal")


def _sorted_values(values: Iterable[Any]) -> list[Any]:
    """Deterministic IN-list order (type name, then repr)."""
    return sorted(values, key=lambda v: (type(v).__name__, repr(v)))


def _literal_to_sql(literal: Literal) -> str:
    column = quote_ident(literal.attribute)
    if literal.op == "in":
        rendered = ", ".join(sql_literal(v) for v in _sorted_values(literal.value))
        return f"{column} IN ({rendered})"
    return f"{column} {_OP_TO_SQL[literal.op]} {sql_literal(literal.value)}"


def predicate_to_sql(predicate: Literal | Conjunction) -> str:
    """A WHERE-ready condition string for a literal or conjunction."""
    if isinstance(predicate, Literal):
        return _literal_to_sql(predicate)
    if isinstance(predicate, Conjunction):
        return " AND ".join(f"({_literal_to_sql(l)})" for l in predicate.literals)
    raise SQLError(
        f"cannot compile predicate of type {type(predicate).__name__}"
    )


def select_to_sql(predicate: Literal | Conjunction, table: str = "D_M") -> str:
    """The σ_c selection: rows of ``table`` satisfying the literal."""
    return f"SELECT * FROM {quote_ident(table)} WHERE {predicate_to_sql(predicate)}"


def _keep_condition(literal: Literal) -> str:
    """The 3-valued-logic-safe survival test for one reduction literal.

    The engine's ⊖ keeps a row unless the literal is *true*; a null cell
    never satisfies a literal, so the SQL must keep null rows too:
    ``c IS NULL OR NOT (cond)`` is exactly "cond is not true".
    """
    column = quote_ident(literal.attribute)
    return f"({column} IS NULL OR NOT ({_literal_to_sql(literal)}))"


def reduct_to_sql(predicate: Literal | Conjunction, table: str = "D_M") -> str:
    """⊖_c: the SELECT producing the rows that *survive* the reduction.

    For a conjunction, a row is removed only when every literal holds, so
    it survives when any literal fails (or is unknowable on a null cell).
    """
    if isinstance(predicate, Literal):
        condition = _keep_condition(predicate)
    elif isinstance(predicate, Conjunction):
        condition = " OR ".join(_keep_condition(l) for l in predicate.literals)
    else:
        raise SQLError(
            f"cannot compile predicate of type {type(predicate).__name__}"
        )
    return f"SELECT * FROM {quote_ident(table)} WHERE {condition}"


def augment_to_sql(
    dm_table: str,
    d_table: str,
    dm_columns: Sequence[str],
    d_columns: Sequence[str],
    predicate: Literal | Conjunction | None = None,
) -> str:
    """⊕_c(D_M, D) as a null-padded UNION ALL.

    Output columns are ``dm_columns`` followed by the new attributes of
    ``D`` (the schema-union order of the engine's ``augment``); each side
    selects its own values and NULL for the attributes it lacks; the
    literal filters the tuples taken from ``D``.
    """
    if not dm_columns or not d_columns:
        raise SQLError("augment needs non-empty column lists on both sides")
    union_columns = list(dm_columns) + [
        c for c in d_columns if c not in set(dm_columns)
    ]
    left_items = [
        quote_ident(c) if c in set(dm_columns) else f"NULL AS {quote_ident(c)}"
        for c in union_columns
    ]
    right_items = [
        quote_ident(c) if c in set(d_columns) else f"NULL AS {quote_ident(c)}"
        for c in union_columns
    ]
    left = f"SELECT {', '.join(left_items)} FROM {quote_ident(dm_table)}"
    right = f"SELECT {', '.join(right_items)} FROM {quote_ident(d_table)}"
    if predicate is not None:
        right += f" WHERE {predicate_to_sql(predicate)}"
    return f"{left} UNION ALL {right}"


def augment_join_to_sql(
    dm_table: str,
    d_table: str,
    on: Sequence[str],
    predicate: Literal | Conjunction | None = None,
) -> str:
    """Join-flavoured ⊕: LEFT JOIN the ``c``-filtered ``D`` onto ``D_M``.

    Filtering the right side before an outer join equals folding the
    filter into the ON clause when it touches only right-side columns —
    which a MODis literal (defined over ``R_D``) always does.
    """
    if not on:
        raise SQLError("augment join needs at least one key attribute")
    dm, d = quote_ident(dm_table), quote_ident(d_table)
    conditions = [f"{dm}.{quote_ident(k)} = {d}.{quote_ident(k)}" for k in on]
    if predicate is not None:
        literals = (
            predicate.literals
            if isinstance(predicate, Conjunction)
            else (predicate,)
        )
        for literal in literals:
            column = f"{d}.{quote_ident(literal.attribute)}"
            if literal.op == "in":
                values = ", ".join(
                    sql_literal(v) for v in _sorted_values(literal.value)
                )
                conditions.append(f"{column} IN ({values})")
            else:
                conditions.append(
                    f"{column} {_OP_TO_SQL[literal.op]} "
                    f"{sql_literal(literal.value)}"
                )
    return (
        f"SELECT * FROM {dm} LEFT JOIN {d} ON {' AND '.join(conditions)}"
    )


def state_to_sql(space, bits: int, table: str = "D_U") -> str:
    """The provenance query of a transducer state.

    Reconstructs exactly ``space.materialize(bits)`` from the universal
    table: project the active attributes plus the target, and keep a row
    iff every active attribute is null or falls in one of its active
    domain clusters (the bitmap row-survival rule of
    :class:`~repro.core.transducer.TabularSearchSpace`).
    """
    columns = space.active_attributes(bits) + [space.target]
    conditions: list[str] = []
    for name in space.active_attributes(bits):
        entry_ids = space._cluster_entries[name]
        if not entry_ids:
            continue
        active = [e for e in entry_ids if (bits >> e) & 1]
        if len(active) == len(entry_ids):
            continue  # all clusters active: the constraint is vacuous
        column = quote_ident(name)
        if not active:
            conditions.append(f"{column} IS NULL")
            continue
        values: set[Any] = set()
        for entry_id in active:
            values |= set(space.entries[entry_id].payload.values)
        rendered = ", ".join(sql_literal(v) for v in _sorted_values(values))
        conditions.append(f"({column} IS NULL OR {column} IN ({rendered}))")
    sql = (
        f"SELECT {', '.join(quote_ident(c) for c in columns)} "
        f"FROM {quote_ident(table)}"
    )
    if conditions:
        sql += f" WHERE {' AND '.join(conditions)}"
    return sql
