"""A miniature SPJ query engine plus a MODis→SQL compiler.

The paper grounds its operator set in relational practice: "These operators
can be expressed by SPJ (select, project, join) queries, or implemented as
user-defined functions" (Section 3), and the generation process should work
"by simple, primitive operators that are well supported by established query
engines" (Section 1). This package makes both claims executable:

* :mod:`repro.sql.tokens` / :mod:`repro.sql.parser` — a SQL-92-flavoured
  SELECT subset (projection, DISTINCT, WHERE with three-valued logic,
  INNER/LEFT/RIGHT/FULL JOIN, UNION [ALL], ORDER BY, LIMIT);
* :mod:`repro.sql.executor` — evaluates parsed queries against a
  :class:`Catalog` of :class:`~repro.relational.Table` objects;
* :mod:`repro.sql.compiler` — renders MODis artifacts as SQL text: literal
  predicates, the ⊕/⊖ operators, and whole transducer states (the
  provenance query that re-derives a skyline dataset from ``D_U``).

Tests assert round-trips: executing ``state_to_sql(space, bits)`` over the
universal table reproduces ``space.materialize(bits)`` exactly.
"""

from .compiler import (
    augment_join_to_sql,
    augment_to_sql,
    predicate_to_sql,
    reduct_to_sql,
    select_to_sql,
    sql_literal,
    state_to_sql,
)
from .executor import Catalog, execute, query
from .explain import explain, render_expr
from .parser import parse
from .tokens import Token, tokenize

__all__ = [
    "Catalog",
    "Token",
    "augment_join_to_sql",
    "augment_to_sql",
    "execute",
    "explain",
    "parse",
    "predicate_to_sql",
    "query",
    "reduct_to_sql",
    "render_expr",
    "select_to_sql",
    "sql_literal",
    "state_to_sql",
    "tokenize",
]
