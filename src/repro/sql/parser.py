"""Recursive-descent parser for the SPJ SQL subset.

:func:`parse` turns a SQL string into the :mod:`repro.sql.nodes` AST.
Errors carry the token position so tests (and users) can pinpoint typos.
"""

from __future__ import annotations

from ..exceptions import SQLError
from . import nodes as N
from .tokens import EOF, IDENT, KEYWORD, NUMBER, OP, PUNCT, STRING, Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        return self.current.kind == KEYWORD and self.current.value in words

    def at_punct(self, value: str) -> bool:
        return self.current.kind == PUNCT and self.current.value == value

    def accept_keyword(self, *words: str) -> str | None:
        if self.at_keyword(*words):
            return self.advance().value  # type: ignore[return-value]
        return None

    def accept_punct(self, value: str) -> bool:
        if self.at_punct(value):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SQLError(
                f"expected {word} at position {self.current.pos}, "
                f"found {self.current.value!r}"
            )

    def expect_punct(self, value: str) -> None:
        if not self.accept_punct(value):
            raise SQLError(
                f"expected {value!r} at position {self.current.pos}, "
                f"found {self.current.value!r}"
            )

    def expect_ident(self) -> str:
        if self.current.kind != IDENT:
            raise SQLError(
                f"expected identifier at position {self.current.pos}, "
                f"found {self.current.value!r}"
            )
        return self.advance().value  # type: ignore[return-value]

    # -- grammar --------------------------------------------------------------
    def parse_query(self):
        node = self.parse_select()
        while self.accept_keyword("UNION"):
            keep_all = bool(self.accept_keyword("ALL"))
            right = self.parse_select()
            node = N.Union(node, right, all=keep_all)
        if self.current.kind != EOF:
            raise SQLError(
                f"trailing input at position {self.current.pos}: "
                f"{self.current.value!r}"
            )
        return node

    def parse_select(self) -> N.Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = self.parse_select_list()
        self.expect_keyword("FROM")
        source = self.parse_table_ref()
        joins: list[N.Join] = []
        while True:
            join = self.parse_join()
            if join is None:
                break
            joins.append(join)
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by: list = []
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())
            if self.accept_keyword("HAVING"):
                having = self.parse_expr()
        order_by: list[N.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.kind != NUMBER or not isinstance(token.value, int) or token.value < 0:
                raise SQLError(f"LIMIT needs a non-negative integer at {token.pos}")
            limit = token.value
        return N.Select(
            items=items,
            source=source,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def parse_select_list(self):
        if self.accept_punct("*"):
            return N.Star()
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        return tuple(items)

    def parse_select_item(self) -> N.SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == IDENT:
            alias = self.advance().value  # bare alias
        return N.SelectItem(expr, alias)

    def parse_table_ref(self) -> N.TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == IDENT:
            alias = self.advance().value
        return N.TableRef(name, alias)

    def parse_join(self) -> N.Join | None:
        kind = None
        if self.accept_keyword("JOIN"):
            kind = N.INNER
        elif self.accept_keyword("INNER"):
            self.expect_keyword("JOIN")
            kind = N.INNER
        elif self.at_keyword("LEFT", "RIGHT", "FULL"):
            word = self.advance().value
            self.accept_keyword("OUTER")
            self.expect_keyword("JOIN")
            kind = {"LEFT": N.LEFT, "RIGHT": N.RIGHT, "FULL": N.FULL}[word]
        if kind is None:
            return None
        table = self.parse_table_ref()
        self.expect_keyword("ON")
        on = self.parse_expr()
        return N.Join(kind, table, on)

    def parse_order_item(self) -> N.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return N.OrderItem(expr, descending)

    # -- expressions (precedence: OR < AND < NOT < predicate) ---------------------
    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        operands = [self.parse_and()]
        while self.accept_keyword("OR"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return N.Or(tuple(operands))

    def parse_and(self):
        operands = [self.parse_not()]
        while self.accept_keyword("AND"):
            operands.append(self.parse_not())
        if len(operands) == 1:
            return operands[0]
        return N.And(tuple(operands))

    def parse_not(self):
        if self.accept_keyword("NOT"):
            return N.Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self):
        left = self.parse_primary()
        if self.current.kind == OP:
            op = self.advance().value
            right = self.parse_primary()
            return N.Comparison(op, left, right)
        if self.accept_keyword("IS"):
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return N.IsNull(left, negated=negated)
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("IN"):
            return self.parse_in(left, negated)
        if self.accept_keyword("BETWEEN"):
            low = self.parse_primary()
            self.expect_keyword("AND")
            high = self.parse_primary()
            return N.Between(left, low, high, negated=negated)
        if negated:
            raise SQLError(
                f"expected IN or BETWEEN after NOT at position {self.current.pos}"
            )
        return left

    def parse_in(self, needle, negated: bool) -> N.InList:
        self.expect_punct("(")
        values = [self.parse_constant()]
        while self.accept_punct(","):
            values.append(self.parse_constant())
        self.expect_punct(")")
        return N.InList(needle, tuple(values), negated=negated)

    def parse_constant(self) -> N.Value:
        token = self.current
        if token.kind in (NUMBER, STRING):
            self.advance()
            return N.Value(token.value)
        if self.at_keyword("NULL"):
            self.advance()
            return N.Value(None)
        if self.at_keyword("TRUE"):
            self.advance()
            return N.Value(True)
        if self.at_keyword("FALSE"):
            self.advance()
            return N.Value(False)
        raise SQLError(f"expected a constant at position {token.pos}")

    def parse_primary(self):
        token = self.current
        if token.kind in (NUMBER, STRING) or self.at_keyword(
            "NULL", "TRUE", "FALSE"
        ):
            return self.parse_constant()
        if self.at_keyword(*N.AGGREGATE_FUNCTIONS):
            return self.parse_aggregate()
        if self.accept_punct("("):
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        if token.kind == IDENT:
            first = self.advance().value
            if self.accept_punct("."):
                second = self.expect_ident()
                return N.ColumnRef(second, table=first)
            return N.ColumnRef(first)
        raise SQLError(
            f"unexpected token {token.value!r} at position {token.pos}"
        )

    def parse_aggregate(self) -> N.Aggregate:
        func = self.advance().value
        self.expect_punct("(")
        if func == "COUNT" and self.accept_punct("*"):
            self.expect_punct(")")
            return N.Aggregate("COUNT", operand=None)
        distinct = bool(self.accept_keyword("DISTINCT"))
        operand = self.parse_expr()
        self.expect_punct(")")
        return N.Aggregate(func, operand=operand, distinct=distinct)


def parse(sql: str):
    """Parse ``sql`` into a :class:`~repro.sql.nodes.Select` or
    :class:`~repro.sql.nodes.Union` tree."""
    return _Parser(tokenize(sql)).parse_query()
