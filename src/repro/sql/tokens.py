"""Tokenizer for the SPJ SQL subset.

Produces a flat list of :class:`Token` objects. Keywords are recognized
case-insensitively and normalized to upper case; identifiers keep their
case (and may be double-quoted to escape keywords or unusual characters);
string literals use single quotes with ``''`` escaping, as in SQL.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SQLError

#: Reserved words of the supported grammar.
KEYWORDS = frozenset(
    {
        "ALL",
        "AND",
        "AS",
        "ASC",
        "AVG",
        "BETWEEN",
        "BY",
        "COUNT",
        "DESC",
        "DISTINCT",
        "FALSE",
        "FROM",
        "FULL",
        "GROUP",
        "HAVING",
        "IN",
        "INNER",
        "IS",
        "JOIN",
        "LEFT",
        "LIMIT",
        "MAX",
        "MIN",
        "NOT",
        "NULL",
        "ON",
        "OR",
        "ORDER",
        "OUTER",
        "RIGHT",
        "SELECT",
        "SUM",
        "TRUE",
        "UNION",
        "WHERE",
    }
)

#: Token kinds.
KEYWORD = "keyword"
IDENT = "ident"
NUMBER = "number"
STRING = "string"
OP = "op"
PUNCT = "punct"
EOF = "eof"

_PUNCT = {",", "(", ")", ".", "*"}
_OP_STARTS = {"=", "!", "<", ">"}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical unit: kind, normalized value, source position."""

    kind: str
    value: object
    pos: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.pos})"


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted SQL string starting at ``start``; '' escapes."""
    out: list[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        else:
            out.append(ch)
            i += 1
    raise SQLError(f"unterminated string literal starting at {start}")


def _read_quoted_ident(text: str, start: int) -> tuple[str, int]:
    """Read a double-quoted identifier; "" escapes."""
    out: list[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == '"':
            if i + 1 < n and text[i + 1] == '"':
                out.append('"')
                i += 2
                continue
            if not out:
                raise SQLError(f"empty quoted identifier at {start}")
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise SQLError(f"unterminated quoted identifier starting at {start}")


def _read_number(text: str, start: int) -> tuple[float | int, int]:
    i = start
    n = len(text)
    seen_dot = seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and text[i] in "+-":
                i += 1
        else:
            break
    raw = text[start:i]
    try:
        if seen_dot or seen_exp:
            return float(raw), i
        return int(raw), i
    except ValueError:
        raise SQLError(f"malformed number {raw!r} at {start}") from None


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; the result always ends with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):  # line comment
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            value, i2 = _read_string(text, i)
            tokens.append(Token(STRING, value, i))
            i = i2
            continue
        if ch == '"':
            value, i2 = _read_quoted_ident(text, i)
            tokens.append(Token(IDENT, value, i))
            i = i2
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            value, i2 = _read_number(text, i)
            tokens.append(Token(NUMBER, value, i))
            i = i2
            continue
        if ch == "-" and i + 1 < n and (text[i + 1].isdigit() or text[i + 1] == "."):
            value, i2 = _read_number(text, i + 1)
            tokens.append(Token(NUMBER, -value, i))
            i = i2
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, i))
            else:
                tokens.append(Token(IDENT, word, i))
            i = j
            continue
        if ch in _PUNCT:
            tokens.append(Token(PUNCT, ch, i))
            i += 1
            continue
        if ch in _OP_STARTS:
            two = text[i : i + 2]
            if two in ("==", "!=", "<>", "<=", ">="):
                op = "!=" if two == "<>" else ("=" if two == "==" else two)
                tokens.append(Token(OP, op, i))
                i += 2
                continue
            if ch == "!":
                raise SQLError(f"stray '!' at {i}")
            tokens.append(Token(OP, ch, i))
            i += 1
            continue
        raise SQLError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token(EOF, None, n))
    return tokens
