"""AST node types for the SPJ SQL subset.

All nodes are frozen dataclasses so parsed queries are hashable, comparable
in tests, and safe to share between threads. The grammar (informally):

.. code-block:: text

    query       := select_stmt (UNION [ALL] select_stmt)*
    select_stmt := SELECT [DISTINCT] select_list FROM table_ref join*
                   [WHERE expr] [GROUP BY expr (, expr)* [HAVING expr]]
                   [ORDER BY order_item (, order_item)*] [LIMIT int]
    select_list := '*' | item (',' item)*         item := expr [AS ident]
    table_ref   := ident [AS? ident]
    join        := [INNER|LEFT [OUTER]|RIGHT [OUTER]|FULL [OUTER]] JOIN
                   table_ref ON expr
    expr        := Kleene three-valued boolean algebra over comparisons,
                   IS [NOT] NULL, [NOT] IN (...), [NOT] BETWEEN .. AND ..;
                   aggregates COUNT(*|[DISTINCT] expr), SUM, AVG, MIN, MAX
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

INNER = "inner"
LEFT = "left"
RIGHT = "right"
FULL = "full"
JOIN_KINDS = (INNER, LEFT, RIGHT, FULL)


# -- scalar expressions ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Value:
    """A constant: number, string, boolean, or NULL (``None``)."""

    value: Any


@dataclass(frozen=True, slots=True)
class ColumnRef:
    """A possibly qualified column reference ``[table.]name``."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True, slots=True)
class Comparison:
    """``left <op> right`` with op ∈ {=, !=, <, <=, >, >=}."""

    op: str
    left: Any
    right: Any


@dataclass(frozen=True, slots=True)
class And:
    operands: tuple[Any, ...]


@dataclass(frozen=True, slots=True)
class Or:
    operands: tuple[Any, ...]


@dataclass(frozen=True, slots=True)
class Not:
    operand: Any


@dataclass(frozen=True, slots=True)
class IsNull:
    """``operand IS [NOT] NULL`` — the only two-valued predicate."""

    operand: Any
    negated: bool = False


@dataclass(frozen=True, slots=True)
class InList:
    """``needle [NOT] IN (v1, ..., vk)`` over constant values."""

    needle: Any
    values: tuple[Any, ...]
    negated: bool = False


@dataclass(frozen=True, slots=True)
class Between:
    """``operand [NOT] BETWEEN low AND high`` (inclusive both ends)."""

    operand: Any
    low: Any
    high: Any
    negated: bool = False


AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True, slots=True)
class Aggregate:
    """``FUNC(expr)``, ``COUNT(*)``, or ``COUNT(DISTINCT expr)``.

    SQL null semantics: nulls are skipped by every aggregate except
    ``COUNT(*)``; an empty input yields NULL (0 for the COUNT forms).
    """

    func: str
    operand: Any = None  # None means '*' (COUNT only)
    distinct: bool = False


# -- statements ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SelectItem:
    """One output column: an expression with an optional alias."""

    expr: Any
    alias: str | None = None


@dataclass(frozen=True, slots=True)
class Star:
    """The ``*`` select list."""


@dataclass(frozen=True, slots=True)
class TableRef:
    """A named table with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True, slots=True)
class Join:
    """One JOIN clause: kind, right table, ON condition."""

    kind: str
    table: TableRef
    on: Any


@dataclass(frozen=True, slots=True)
class OrderItem:
    expr: Any
    descending: bool = False


@dataclass(frozen=True, slots=True)
class Select:
    """A single SELECT statement."""

    items: tuple[SelectItem, ...] | Star
    source: TableRef
    joins: tuple[Join, ...] = ()
    where: Any = None
    group_by: tuple[Any, ...] = ()
    having: Any = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False


@dataclass(frozen=True, slots=True)
class Union:
    """``left UNION [ALL] right`` — positional column alignment."""

    left: Any
    right: Any
    all: bool = False
