"""Job specs and the service's explicit job state machine.

A :class:`Job` wraps one :class:`~repro.scenarios.spec.Scenario` — named
(a registry reference) or inline (ad-hoc spec fields from an HTTP body) —
with a priority and the full lifecycle record the service exposes over
its API: state, timestamps, budget/oracle accounting, and the result.

States move strictly along::

    QUEUED ──► RUNNING ──► DONE
       │          ├──────► FAILED
       └──────────┴──────► CANCELLED

``DONE``/``FAILED``/``CANCELLED`` are terminal. Every transition goes
through :meth:`Job.transition`, which rejects anything else — the
scheduler never has to reason about half-legal states, and tests can
assert on the machine directly.
"""

from __future__ import annotations

import math
import time
import uuid
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from ..exceptions import ServiceError
from ..scenarios.registry import ScenarioRegistry
from ..scenarios.spec import Scenario


class JobState:
    """The five job states, as plain strings (JSON- and API-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


#: state → states it may legally move to.
_TRANSITIONS: dict[str, frozenset[str]] = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}

#: Scenario constructor fields an inline submission may set.
INLINE_SPEC_FIELDS = frozenset(
    {
        "name",
        "task",
        "algorithm",
        "tags",
        "algorithm_kwargs",
        "epsilon",
        "budget",
        "max_level",
        "scale",
        "seed",
        "estimator",
        "n_bootstrap",
        "distributed",
        "verify",
        "description",
    }
)

#: Submission keys that are not scenario fields.
_REQUEST_ONLY_FIELDS = frozenset(
    {"scenario", "priority", "timeout", "max_oracle_calls", "shards", "profile"}
)

#: Upper bound on ``shards=N`` — far above any useful fan-out (the
#: level-1 frontier of the paper's tasks is tens of operators), but low
#: enough that a typo cannot fan one submission into thousands of jobs.
MAX_SHARDS = 64


def new_job_id() -> str:
    """A short, URL-safe, collision-resistant job id."""
    return f"job-{uuid.uuid4().hex[:12]}"


#: Every plain :class:`Job` attribute serialized verbatim by BOTH the API
#: payload and the journal snapshot (``spec`` is rendered separately by
#: each view). One list, three consumers — a new Job field added here is
#: automatically served, persisted, and replayed; one added to the
#: dataclass but not here fails the snapshot drift test.
LIFECYCLE_FIELDS = (
    "id",
    "priority",
    "state",
    "submitted_at",
    "started_at",
    "finished_at",
    "run_seconds",
    "result",
    "error",
    "cache_hit",
    "warm_started",
    "warm_records",
    "oracle_calls",
    "oracle_calls_saved",
    "timeout",
    "max_oracle_calls",
    "retries",
    "failure_reason",
    "deduped",
    "shards",
    "parent_id",
    "shard_index",
    "lease_owner",
    "lease_expires_at",
    "trace",
    "profile",
    "profile_path",
    "progress",
    "updated_at",
)


@dataclass
class Job:
    """One unit of service work: a scenario spec plus its lifecycle record.

    ``priority`` is "higher runs sooner"; ties break by submission order
    (FIFO). All mutation happens under the scheduler's lock — the dataclass
    itself carries no synchronization.
    """

    spec: Scenario
    priority: int = 0
    id: str = field(default_factory=new_job_id)
    state: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    run_seconds: float = 0.0
    result: dict[str, Any] | None = None
    error: str | None = None
    #: completed instantly from the content-addressed result cache.
    cache_hit: bool = False
    #: estimator was seeded from the persistent shared oracle store.
    warm_started: bool = False
    #: how many historical test records the warm start injected.
    warm_records: int = 0
    #: real model trainings this job paid (None: unknown, e.g. distributed).
    oracle_calls: int | None = None
    #: oracle calls avoided vs the cold run that seeded the task's store.
    oracle_calls_saved: int = 0
    #: wall-clock limit in seconds (None: unlimited). Enforced
    #: cooperatively at the oracle boundary, and by hard kill on the
    #: forked-process backend.
    timeout: float | None = None
    #: oracle-call quota (None: unlimited); exceeding it fails the job
    #: with ``failure_reason="quota"`` but keeps its partial oracle truth.
    max_oracle_calls: int | None = None
    #: crash-recovery re-executions charged so far (journal replay only).
    retries: int = 0
    #: why a FAILED job failed: "timeout" | "quota" | "retry-budget" |
    #: "error" (an ordinary exception) | None while not failed.
    failure_reason: str | None = None
    #: completed by copying an identical in-flight job's result.
    deduped: bool = False
    #: shard fan-out declared at submission (None: ordinary job). Set on
    #: both the parent and its shard children.
    shards: int | None = None
    #: the parent job id on shard children (None otherwise).
    parent_id: str | None = None
    #: this child's partition index in ``range(shards)`` (None on the
    #: parent and on ordinary jobs).
    shard_index: int | None = None
    #: scheduler id currently holding this job's journal lease.
    lease_owner: str | None = None
    #: epoch after which the lease is adoptable by a peer scheduler.
    lease_expires_at: float | None = None
    #: flat span records of this job's lifecycle (``repro.obs.tracing``
    #: dicts; None until the job has run). Persisted with the snapshot so
    #: traces survive journal replay — an *additive* journal field, no
    #: version bump per the journal's versioning rules.
    trace: list[dict[str, Any]] | None = None
    #: cProfile requested at submission (needs the server's --profile-dir).
    profile: bool = False
    #: where the pstats dump landed (None: not profiled).
    profile_path: str | None = None
    #: latest live-progress counters from the running search (level,
    #: states valuated vs budget, front size, ...; None before the first
    #: progress event). Updated in place by the scheduler's drain thread
    #: WITHOUT touching ``updated_at``, so the lifecycle ETag stays
    #: stable while a job merely makes progress. Additive journal field.
    progress: dict[str, Any] | None = None
    #: last lifecycle mutation (feeds the API's weak ETag).
    updated_at: float = field(default_factory=time.time)

    # -- state machine -----------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def transition(self, new_state: str) -> None:
        """Move to ``new_state``, stamping timestamps; illegal moves raise."""
        if new_state not in _TRANSITIONS:
            raise ServiceError(f"unknown job state {new_state!r}")
        if new_state not in _TRANSITIONS[self.state]:
            raise ServiceError(
                f"job {self.id}: illegal transition "
                f"{self.state} -> {new_state}"
            )
        self.state = new_state
        now = time.time()
        self.updated_at = now
        if new_state == JobState.RUNNING:
            self.started_at = now
        elif new_state in JobState.TERMINAL:
            self.finished_at = now

    @property
    def is_shard_parent(self) -> bool:
        """True for the coordinating job of a ``shards=N`` submission."""
        return self.shards is not None and self.shard_index is None

    # -- views -------------------------------------------------------------------
    def to_payload(self, include_result: bool = False) -> dict[str, Any]:
        """The JSON form served by ``GET /jobs`` and ``GET /jobs/{id}``."""
        spec = self.spec
        payload: dict[str, Any] = {
            field_name: getattr(self, field_name)
            for field_name in LIFECYCLE_FIELDS
            # result, trace and progress have dedicated endpoints
            # (GET /results/{id}, /jobs/{id}/trace, /jobs/{id}/progress);
            # keeping progress out also keeps the ETag honest — the job
            # payload only changes when the lifecycle does.
            if field_name not in ("result", "trace", "progress")
        }
        payload["scenario"] = {
            "name": spec.name,
            "tags": list(spec.tags),
            **spec.cache_payload(),
        }
        payload["fingerprint"] = spec.fingerprint()
        payload["summary"] = summarize_result(self.result)
        if include_result:
            payload["result"] = self.result
        return payload

    # -- journal round-trip ------------------------------------------------------
    def to_snapshot(self) -> dict[str, Any]:
        """The journal form: the full lifecycle record plus enough spec
        fields to rebuild the :class:`Scenario` on replay.

        Additive by contract (see the journal's versioning rules):
        :meth:`from_snapshot` must treat missing keys as their dataclass
        defaults, so old journals replay under newer code.
        """
        spec = self.spec
        snapshot: dict[str, Any] = {
            field_name: getattr(self, field_name)
            for field_name in LIFECYCLE_FIELDS
        }
        snapshot["spec"] = {
            "name": spec.name,
            "tags": list(spec.tags),
            "description": spec.description,
            **spec.cache_payload(),
        }
        return snapshot

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> Job:
        """Rebuild a job from its journal snapshot (state set directly —
        replay restores facts, it does not re-walk the state machine).

        Unknown spec keys are dropped rather than passed to the strict
        :class:`Scenario` constructor: the journal's versioning rules
        allow *additive* fields without a version bump, so a journal
        written by a newer release must still replay (minus the fields
        this release does not know) instead of raising.
        """
        known = {f.name for f in fields(Scenario)}
        spec_fields = {
            k: v for k, v in dict(snapshot["spec"]).items() if k in known
        }
        if isinstance(spec_fields.get("tags"), list):
            spec_fields["tags"] = tuple(spec_fields["tags"])
        spec = Scenario(**spec_fields)
        state = snapshot.get("state", JobState.QUEUED)
        if state not in _TRANSITIONS:
            raise ServiceError(
                f"snapshot for {snapshot.get('id')!r} carries unknown "
                f"state {state!r}"
            )
        job = cls(
            spec=spec,
            priority=int(snapshot.get("priority", 0)),
            id=str(snapshot["id"]),
            state=state,
        )
        for field_name in LIFECYCLE_FIELDS:
            if field_name in ("id", "priority", "state"):
                continue  # constructor-set above (with validation)
            if field_name in snapshot:
                setattr(job, field_name, snapshot[field_name])
        return job


def summarize_result(result: Mapping[str, Any] | None) -> dict[str, Any]:
    """A small quality digest of a result payload (empty dict if none)."""
    if not result:
        return {}
    return {
        "skyline_size": len(result.get("entries", [])),
        "n_valuated": result.get("n_valuated", 0),
        "terminated_by": result.get("terminated_by", ""),
        "elapsed_seconds": result.get("elapsed_seconds", 0.0),
    }


def scenario_from_request(
    body: Mapping[str, Any], registry: ScenarioRegistry
) -> Scenario:
    """Resolve a submission body into a :class:`Scenario`.

    Two shapes are accepted:

    * ``{"scenario": "<registered name>"}`` — a registry reference;
    * inline spec fields (``{"task": "T3", "algorithm": "apx", ...}``) —
      an ad-hoc scenario, auto-named when ``name`` is omitted. Because the
      result-cache fingerprint excludes identity fields, an inline job
      identical to a named one still dedups against its cached result.

    Unknown keys are rejected rather than ignored, so a typo ("buget")
    fails loudly at submission time instead of silently running defaults.
    """
    if not isinstance(body, Mapping):
        raise ServiceError("job submission must be a JSON object")
    unknown = set(body) - INLINE_SPEC_FIELDS - _REQUEST_ONLY_FIELDS
    if unknown:
        raise ServiceError(
            f"unknown job fields {sorted(unknown)}; accepted: "
            f"{sorted(INLINE_SPEC_FIELDS | _REQUEST_ONLY_FIELDS)}"
        )
    named = body.get("scenario")
    inline = {k: body[k] for k in INLINE_SPEC_FIELDS if k in body}
    if named is not None:
        if inline:
            raise ServiceError(
                "a submission is either a scenario reference or inline "
                f"spec fields, not both (got scenario={named!r} plus "
                f"{sorted(inline)})"
            )
        return registry.get(str(named))
    if "task" not in inline:
        raise ServiceError(
            "inline submissions need at least a 'task' "
            "(or use {'scenario': '<registered name>'})"
        )
    inline.setdefault("name", new_job_id())
    if isinstance(inline.get("tags"), list):
        inline["tags"] = tuple(inline["tags"])
    return Scenario(**inline)


def limits_from_request(
    body: Mapping[str, Any]
) -> tuple[float | None, int | None]:
    """Validate and extract ``(timeout, max_oracle_calls)`` from a body.

    Both are optional; ``None`` (or JSON ``null``) means unlimited.
    Non-numeric or non-positive limits are rejected at submission time.
    """
    timeout = body.get("timeout")
    if timeout is not None:
        if (
            isinstance(timeout, bool)
            or not isinstance(timeout, (int, float))
            or not math.isfinite(timeout)
            or timeout <= 0
        ):
            raise ServiceError(
                f"timeout must be a positive finite number of seconds, "
                f"got {timeout!r}"
            )
        timeout = float(timeout)
    quota = body.get("max_oracle_calls")
    if quota is not None:
        if isinstance(quota, bool) or not isinstance(quota, int) or quota < 1:
            raise ServiceError(
                f"max_oracle_calls must be a positive integer, got {quota!r}"
            )
    return timeout, quota


def profile_from_request(body: Mapping[str, Any]) -> bool:
    """Validate and extract the ``profile`` flag from a submission body.

    Accepting the flag is independent of the server actually having a
    ``--profile-dir``; without one the flag is recorded but no pstats
    dump is produced (the trace endpoint reports ``profile: null``).
    """
    profile = body.get("profile", False)
    if not isinstance(profile, bool):
        raise ServiceError(f"profile must be a boolean, got {profile!r}")
    return profile


def shards_from_request(body: Mapping[str, Any]) -> int | None:
    """Validate and extract the ``shards`` fan-out from a body.

    ``None`` (or JSON ``null``) means an ordinary single-worker job;
    otherwise an integer in ``1..MAX_SHARDS``. ``shards=1`` still routes
    through the scatter/merge machinery (a scatter of one), so the two
    paths stay structurally identical and directly comparable.
    """
    shards = body.get("shards")
    if shards is None:
        return None
    if (
        isinstance(shards, bool)
        or not isinstance(shards, int)
        or not 1 <= shards <= MAX_SHARDS
    ):
        raise ServiceError(
            f"shards must be an integer in 1..{MAX_SHARDS}, got {shards!r}"
        )
    return shards
