"""Job specs and the service's explicit job state machine.

A :class:`Job` wraps one :class:`~repro.scenarios.spec.Scenario` — named
(a registry reference) or inline (ad-hoc spec fields from an HTTP body) —
with a priority and the full lifecycle record the service exposes over
its API: state, timestamps, budget/oracle accounting, and the result.

States move strictly along::

    QUEUED ──► RUNNING ──► DONE
       │          ├──────► FAILED
       └──────────┴──────► CANCELLED

``DONE``/``FAILED``/``CANCELLED`` are terminal. Every transition goes
through :meth:`Job.transition`, which rejects anything else — the
scheduler never has to reason about half-legal states, and tests can
assert on the machine directly.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..exceptions import ServiceError
from ..scenarios.registry import ScenarioRegistry
from ..scenarios.spec import Scenario


class JobState:
    """The five job states, as plain strings (JSON- and API-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


#: state → states it may legally move to.
_TRANSITIONS: dict[str, frozenset[str]] = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}

#: Scenario constructor fields an inline submission may set.
INLINE_SPEC_FIELDS = frozenset(
    {
        "name",
        "task",
        "algorithm",
        "tags",
        "algorithm_kwargs",
        "epsilon",
        "budget",
        "max_level",
        "scale",
        "seed",
        "estimator",
        "n_bootstrap",
        "distributed",
        "verify",
        "description",
    }
)

#: Submission keys that are not scenario fields.
_REQUEST_ONLY_FIELDS = frozenset({"scenario", "priority"})


def new_job_id() -> str:
    """A short, URL-safe, collision-resistant job id."""
    return f"job-{uuid.uuid4().hex[:12]}"


@dataclass
class Job:
    """One unit of service work: a scenario spec plus its lifecycle record.

    ``priority`` is "higher runs sooner"; ties break by submission order
    (FIFO). All mutation happens under the scheduler's lock — the dataclass
    itself carries no synchronization.
    """

    spec: Scenario
    priority: int = 0
    id: str = field(default_factory=new_job_id)
    state: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    run_seconds: float = 0.0
    result: dict[str, Any] | None = None
    error: str | None = None
    #: completed instantly from the content-addressed result cache.
    cache_hit: bool = False
    #: estimator was seeded from the persistent shared oracle store.
    warm_started: bool = False
    #: how many historical test records the warm start injected.
    warm_records: int = 0
    #: real model trainings this job paid (None: unknown, e.g. distributed).
    oracle_calls: int | None = None
    #: oracle calls avoided vs the cold run that seeded the task's store.
    oracle_calls_saved: int = 0

    # -- state machine -----------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def transition(self, new_state: str) -> None:
        """Move to ``new_state``, stamping timestamps; illegal moves raise."""
        if new_state not in _TRANSITIONS:
            raise ServiceError(f"unknown job state {new_state!r}")
        if new_state not in _TRANSITIONS[self.state]:
            raise ServiceError(
                f"job {self.id}: illegal transition "
                f"{self.state} -> {new_state}"
            )
        self.state = new_state
        now = time.time()
        if new_state == JobState.RUNNING:
            self.started_at = now
        elif new_state in JobState.TERMINAL:
            self.finished_at = now

    # -- views -------------------------------------------------------------------
    def to_payload(self, include_result: bool = False) -> dict[str, Any]:
        """The JSON form served by ``GET /jobs`` and ``GET /jobs/{id}``."""
        spec = self.spec
        payload: dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "scenario": {
                "name": spec.name,
                "tags": list(spec.tags),
                **spec.cache_payload(),
            },
            "fingerprint": spec.fingerprint(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "run_seconds": self.run_seconds,
            "cache_hit": self.cache_hit,
            "warm_started": self.warm_started,
            "warm_records": self.warm_records,
            "oracle_calls": self.oracle_calls,
            "oracle_calls_saved": self.oracle_calls_saved,
            "error": self.error,
            "summary": summarize_result(self.result),
        }
        if include_result:
            payload["result"] = self.result
        return payload


def summarize_result(result: Mapping[str, Any] | None) -> dict[str, Any]:
    """A small quality digest of a result payload (empty dict if none)."""
    if not result:
        return {}
    return {
        "skyline_size": len(result.get("entries", [])),
        "n_valuated": result.get("n_valuated", 0),
        "terminated_by": result.get("terminated_by", ""),
        "elapsed_seconds": result.get("elapsed_seconds", 0.0),
    }


def scenario_from_request(
    body: Mapping[str, Any], registry: ScenarioRegistry
) -> Scenario:
    """Resolve a submission body into a :class:`Scenario`.

    Two shapes are accepted:

    * ``{"scenario": "<registered name>"}`` — a registry reference;
    * inline spec fields (``{"task": "T3", "algorithm": "apx", ...}``) —
      an ad-hoc scenario, auto-named when ``name`` is omitted. Because the
      result-cache fingerprint excludes identity fields, an inline job
      identical to a named one still dedups against its cached result.

    Unknown keys are rejected rather than ignored, so a typo ("buget")
    fails loudly at submission time instead of silently running defaults.
    """
    if not isinstance(body, Mapping):
        raise ServiceError("job submission must be a JSON object")
    unknown = set(body) - INLINE_SPEC_FIELDS - _REQUEST_ONLY_FIELDS
    if unknown:
        raise ServiceError(
            f"unknown job fields {sorted(unknown)}; accepted: "
            f"{sorted(INLINE_SPEC_FIELDS | _REQUEST_ONLY_FIELDS)}"
        )
    named = body.get("scenario")
    inline = {k: body[k] for k in INLINE_SPEC_FIELDS if k in body}
    if named is not None:
        if inline:
            raise ServiceError(
                "a submission is either a scenario reference or inline "
                f"spec fields, not both (got scenario={named!r} plus "
                f"{sorted(inline)})"
            )
        return registry.get(str(named))
    if "task" not in inline:
        raise ServiceError(
            "inline submissions need at least a 'task' "
            "(or use {'scenario': '<registered name>'})"
        )
    inline.setdefault("name", new_job_id())
    if isinstance(inline.get("tags"), list):
        inline["tags"] = tuple(inline["tags"])
    return Scenario(**inline)
