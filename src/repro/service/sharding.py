"""Sharded search jobs: scatter one submission, merge one skyline.

A ``shards=N`` submission fans one scenario out as ``N`` shard children
plus one coordinating *parent* job. Each child runs
:class:`~repro.distributed.worker.WorkerJob` — the seeded reduce-search
of the distributed runtime — over its slice of the level-1 frontier
(:func:`~repro.distributed.partition.partition_frontier`), with an equal
slice of the global valuation budget, and records its local ε-skyline as
its job result. When the last child finishes, the scheduler merges every
shipped state through :func:`~repro.distributed.coordinator.merge_skylines`
(dedupe by bitmap → fresh UPareto grid → exact
:func:`~repro.core.dominance.pareto_front`) into the parent's result.

Determinism: before merging, the union of shipped states is sorted by
bitmap. The ε-grid keeps one representative per cell and breaks exact
ties by insertion order, so canonicalizing the order makes the merged
skyline a pure function of the shipped *set* — a ``shards=4`` run whose
children exhaust their partitions merges bit-identically to the same
submission with ``shards=1`` (the classic distributed-skyline identity,
``skyline(∪ᵢ skyline(Sᵢ)) = skyline(∪ᵢ Sᵢ)``).

Everything a shard returns is plain JSON (bits as ints, perf as lists),
so shard results survive the journal, the process backend's pipe, and
``GET /v1/jobs/{id}`` unchanged.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Sequence

import numpy as np

from ..distributed.coordinator import merge_skylines
from ..distributed.partition import partition_frontier
from ..distributed.worker import ShippedState, WorkerJob, run_worker_job
import contextlib

from ..exceptions import ServiceError
from ..obs import ProgressEmitter, SpanCollector, span, use_collector, use_emitter
from ..obs.profiling import profile_to_file
from ..scenarios.factory import ResolvedScenario

#: ``algorithm`` reported on merged parent results.
SHARDED_ALGORITHM = "ShardedMODis"


def shard_budget(budget: int, n_shards: int) -> int:
    """Each shard's slice of the global valuation budget (at least 1)."""
    return max(1, budget // n_shards)


class ShardRun:
    """The backend unit for one shard: seeded local search, plain result.

    Mirrors the scheduler's ``_JobRun`` contract — fork-friendly and
    returning only JSON-able data — but runs the distributed worker's
    seeded search over partition ``shard_index`` of ``n_shards`` instead
    of the scenario's single-node algorithm. Like ``_JobRun``, it
    installs a span collector for the duration of the run, so the
    seeded search's per-phase spans come back as the ``"spans"`` list
    (which the scheduler persists as the shard child's trace).
    """

    __slots__ = (
        "resolved", "n_shards", "shard_index", "job_id", "profile_path",
        "progress_fd",
    )

    def __init__(
        self,
        resolved: ResolvedScenario,
        n_shards: int,
        shard_index: int,
        job_id: str | None = None,
        profile_path: str | None = None,
        progress_fd: int | None = None,
    ):
        if not 0 <= shard_index < n_shards:
            raise ServiceError(
                f"shard_index {shard_index} outside 0..{n_shards - 1}"
            )
        self.resolved = resolved
        self.n_shards = n_shards
        self.shard_index = shard_index
        self.job_id = job_id
        self.profile_path = profile_path
        self.progress_fd = progress_fd

    def __call__(self) -> dict[str, Any]:
        spec = self.resolved.spec
        task = self.resolved.task
        collector = SpanCollector()
        emitter_cm = (
            use_emitter(ProgressEmitter(self.progress_fd))
            if self.progress_fd is not None
            else contextlib.nullcontext()
        )
        start = time.perf_counter()
        with use_collector(collector), profile_to_file(
            self.profile_path
        ), emitter_cm:
            with span(
                "run", job_id=self.job_id, shard_index=self.shard_index
            ):
                with span("partition-frontier"):
                    seeds = partition_frontier(task.space, self.n_shards)[
                        self.shard_index
                    ]
                result = run_worker_job(
                    WorkerJob(
                        worker_id=self.shard_index,
                        config_factory=lambda: task.build_config(
                            estimator=spec.estimator,
                            n_bootstrap=spec.n_bootstrap,
                        ),
                        seeds=seeds,
                        epsilon=spec.epsilon,
                        budget=shard_budget(spec.budget, self.n_shards),
                        max_level=spec.max_level,
                    )
                )
        return {
            "spans": collector.spans,
            "spans_dropped": collector.dropped,
            "shard_index": self.shard_index,
            "n_shards": self.n_shards,
            "shipped": [
                {
                    "bits": int(state.bits),
                    "perf": [float(v) for v in state.perf],
                    "via": state.via,
                    "output_size": list(state.output_size),
                }
                for state in result.shipped
            ],
            "n_valuated": result.n_valuated,
            "n_spawned": result.n_spawned,
            "terminated_by": result.terminated_by,
            "seconds": time.perf_counter() - start,
        }


def _shipped_from_payload(payload: Mapping[str, Any]) -> list[ShippedState]:
    """Rebuild a shard result's shipped states from their JSON form."""
    states = []
    for item in payload.get("shipped", []):
        states.append(
            ShippedState(
                bits=int(item["bits"]),
                perf=np.asarray(item["perf"], dtype=float),
                via=str(item.get("via") or "s_U"),
                output_size=tuple(item.get("output_size") or (0, 0)),
            )
        )
    return states


def merge_shard_results(
    resolved: ResolvedScenario,
    shard_payloads: Sequence[Mapping[str, Any]],
    verify: bool | None = None,
) -> dict[str, Any]:
    """Fold every shard's local skyline into the parent's result payload.

    The union is sorted by bitmap before the grid pass (see the module
    docstring), optionally re-scored against the true oracle (the same
    finishing step :class:`~repro.distributed.DistributedMODis` applies;
    defaults to the spec's ``verify`` flag), and rendered in the exact
    shape of :func:`repro.report.build_payload` — ``GET /v1/results/{id}``
    looks the same for sharded and ordinary jobs.
    """
    spec = resolved.spec
    task = resolved.task
    measures = task.measures
    if verify is None:
        verify = spec.verify
    shipped = sorted(
        (
            state
            for payload in shard_payloads
            for state in _shipped_from_payload(payload)
        ),
        key=lambda state: state.bits,
    )
    merge_start = time.perf_counter()
    merged = merge_skylines([shipped], measures, spec.epsilon)
    if verify and merged:
        from ..core.dominance import pareto_front
        from ..core.estimator import oracle_artifact

        config = task.build_config(
            estimator=spec.estimator, n_bootstrap=spec.n_bootstrap
        )
        oracle = config.oracle
        if oracle is not None:
            for state in merged:
                raw = oracle(oracle_artifact(task.space, oracle, state.bits))
                state.perf = measures.normalize_raw(raw)
            front = pareto_front([s.perf for s in merged])
            merged = [merged[i] for i in front]
    entries = []
    for state in sorted(
        merged, key=lambda s: (tuple(s.perf), s.bits)
    ):
        entries.append(
            {
                "description": state.via or "s_U",
                "bits": hex(state.bits),
                "performance": measures.as_dict(state.perf),
                "output_size": list(task.space.output_size(state.bits)),
            }
        )
    return {
        "algorithm": SHARDED_ALGORITHM,
        "epsilon": spec.epsilon,
        "measures": list(measures.names),
        "n_valuated": sum(
            int(p.get("n_valuated", 0)) for p in shard_payloads
        ),
        "n_pruned": 0,
        "elapsed_seconds": sum(
            float(p.get("seconds", 0.0)) for p in shard_payloads
        ),
        "terminated_by": "merged",
        "entries": entries,
        "shards": {
            "n_shards": len(shard_payloads),
            "merge_seconds": time.perf_counter() - merge_start,
            "per_shard": [
                {
                    "shard_index": p.get("shard_index"),
                    "n_valuated": p.get("n_valuated", 0),
                    "n_shipped": len(p.get("shipped", [])),
                    "terminated_by": p.get("terminated_by", ""),
                    "seconds": p.get("seconds", 0.0),
                }
                for p in sorted(
                    shard_payloads,
                    key=lambda p: p.get("shard_index") or 0,
                )
            ],
        },
    }
