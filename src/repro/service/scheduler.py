"""The worker pool that drains the job queue.

``Scheduler`` owns the whole serving pipeline: submissions are validated
fail-fast through the PR-2 :class:`~repro.scenarios.factory.ScenarioFactory`,
content-hash deduplicated against the persistent
:class:`~repro.scenarios.cache.ResultCache` (an identical job completes
instantly, without ever touching the queue) *and* against identical
in-flight jobs (the follower waits and inherits the primary's result
instead of running twice), and otherwise pushed onto the priority
:class:`~repro.service.queue.JobQueue`. Worker threads pop jobs and
execute each one through a PR-1 :mod:`repro.exec` backend's
:meth:`~repro.exec.Backend.run_one` — ``serial`` runs in-thread, while
``process`` forks a child per job so a crashing job cannot take the
service down. Failures are isolated per job: the job ends ``FAILED`` with
the error recorded, and the worker moves on.

With a :class:`~repro.service.journal.JobJournal` attached, every
transition is write-ahead logged: on construction the scheduler replays
the journal, restores terminal records, re-queues jobs that were
``QUEUED`` at crash time, and re-queues crash-interrupted ``RUNNING``
jobs with a retry charged — up to ``max_retries``, after which the job
fails with ``failure_reason="retry-budget"``. Per-job resource limits
(``timeout``, ``max_oracle_calls``) are enforced cooperatively at the
oracle boundary on every backend, and by hard child kill on the
forked-process backend; a limit-hit job still persists whatever oracle
truth it computed, so its partial work warm-starts the next attempt.

With an :class:`~repro.service.store.OracleStore` attached, every job on a
task key warm-starts its estimator from the key's persisted ground truth
and merges its own new truth back in afterwards, so oracle training cost
is paid once per task, not once per job. ``oracle_calls_saved`` is
measured against the cold run that seeded the key's store.

**Sharded jobs.** A ``shards=N`` submission fans out as one coordinating
*parent* plus ``N`` shard children (see :mod:`repro.service.sharding`):
each child runs the distributed runtime's seeded reduce-search over its
slice of the level-1 frontier, and whichever worker completes the last
child merges every shipped local skyline into the parent's result.
Sharded jobs bypass the result cache, in-flight dedup, and the oracle
store — shard results are partial by construction and must never poison
the caches keyed by the full spec's fingerprint.

**Journal leases.** With a journal attached *and an explicit*
``scheduler_id``, every job this scheduler works on is claimed under a
lease (``lease-acquired``/``renewed``/``released`` WAL records carrying
the id and a TTL). Multiple scheduler processes can then share one
journal directory: each boots against the same WAL, leaves peers'
live-leased jobs alone, and — via a periodic sweep that replays the
journal — adopts jobs whose lease expired (a SIGKILLed peer stops
renewing), charging the usual crash retry for work that died mid-run.
A scheduler restarting under its *own* id reclaims its leases
immediately — expiry only gates takeover by peers. Shared-dir mode is
opt-in precisely because ids must be stable: an anonymous scheduler
(the default) cannot tell its own pre-crash leases from a live peer's,
so it journals no leases and recovers exactly as before. Leases
*narrow* the double-execution window, they do not eliminate it: jobs
are deterministic and terminal records are idempotent (last writer
wins), so the guarantee is at-least-once.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Collection, Mapping

from ..core.estimator import TestStore
from ..exceptions import (
    JobLimitExceeded,
    NotCancellableError,
    ServiceError,
    UnknownJobError,
)
from ..exec import Backend, make_backend
from ..logging_util import get_logger, log_context
from ..obs import MetricsRegistry, SpanCollector, span, use_collector
from ..obs.events import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_PARTIAL,
    JOB_PROGRESS,
    JOB_STARTED,
    JOB_SUBMITTED,
    EventBus,
    ProgressEmitter,
    drain_progress,
    use_emitter,
)
from ..obs.metrics import render_prometheus
from ..obs.profiling import profile_to_file, summarize_profile
from ..report import build_payload
from ..scenarios.cache import ResultCache
from ..scenarios.factory import ResolvedScenario, ScenarioFactory
from ..scenarios.registry import ScenarioRegistry, load_builtin_scenarios
from ..scenarios.spec import Scenario
from .jobs import (
    Job,
    JobState,
    limits_from_request,
    profile_from_request,
    scenario_from_request,
    shards_from_request,
    summarize_result,
)
from .journal import JobJournal
from .queue import JobQueue
from .sharding import ShardRun, merge_shard_results
from .store import OracleStore, task_key

logger = get_logger("service.scheduler")

#: Terminal job state → the event type published for it.
_TERMINAL_EVENTS = {
    JobState.DONE: JOB_DONE,
    JobState.FAILED: JOB_FAILED,
    JobState.CANCELLED: JOB_CANCELLED,
}


class _OracleGuard:
    """Cooperative per-job limit enforcement at the oracle boundary.

    Wraps the estimator's oracle callable: every real model training
    first checks the job's wall-clock deadline and oracle-call quota and
    raises :class:`~repro.exceptions.JobLimitExceeded` when either is
    spent. Oracle calls are where a job's cost concentrates, so checking
    here bounds both serial and thread backends without preemption; jobs
    stuck *between* oracle calls are covered by the process backend's
    hard kill.
    """

    __slots__ = (
        "oracle",
        "deadline",
        "max_calls",
        "calls",
        "accepts_matrix",
        "accepts_binned",
    )

    def __init__(
        self,
        oracle,
        deadline: float | None,
        max_calls: int | None,
    ):
        self.oracle = oracle
        self.deadline = deadline
        self.max_calls = max_calls
        self.calls = 0
        # Forward the fast-path capabilities of the wrapped oracle
        # (see repro.core.estimator.oracle_artifact) — guarding must not
        # silently demote jobs to the legacy Table path.
        self.accepts_matrix = getattr(oracle, "accepts_matrix", False)
        self.accepts_binned = getattr(oracle, "accepts_binned", False)

    def __call__(self, artifact):
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise JobLimitExceeded(
                "timeout", "job exceeded its wall-clock limit"
            )
        if self.max_calls is not None and self.calls >= self.max_calls:
            raise JobLimitExceeded(
                "quota",
                f"job exceeded its oracle-call quota of {self.max_calls}",
            )
        self.calls += 1
        return self.oracle(artifact)


def _queue_wait_span(job: Job) -> dict[str, Any] | None:
    """A synthetic span covering submission → first worker pickup.

    The queue wait happens before any collector exists, so it is
    synthesized from the job's own timestamps. Id 0 is reserved for it
    (collector-allocated ids start at 1, so they never collide).
    """
    if job.started_at is None:
        return None
    return {
        "id": 0,
        "parent": None,
        "name": "queue-wait",
        "start": job.submitted_at,
        "end": job.started_at,
        "attrs": {"job_id": job.id},
    }


def _assemble_trace(
    job: Job, run_spans: list[dict[str, Any]] | None
) -> list[dict[str, Any]]:
    """The persisted trace: synthetic queue-wait + the run's collected spans."""
    spans: list[dict[str, Any]] = []
    queue_wait = _queue_wait_span(job)
    if queue_wait is not None:
        spans.append(queue_wait)
    if run_spans:
        spans.extend(run_spans)
    return spans


def _parent_trace(
    parent: Job,
    child_meta: list[tuple[str, int | None, float | None, float | None]],
    merge_start: float,
    merge_end: float,
) -> list[dict[str, Any]]:
    """A shard parent's trace, synthesized at merge time.

    The parent never executes on a backend, so its spans are built from
    lifecycle timestamps: queue-wait (submission → first shard pickup),
    a run span covering scatter-to-merge, one linked ``shard`` span per
    child (carrying the child job id — the cross-journal parent/child
    link), and the merge itself.
    """
    child_starts = [s for _, _, s, _ in child_meta if s is not None]
    scatter_start = min(child_starts) if child_starts else merge_start
    spans: list[dict[str, Any]] = [
        {
            "id": 0,
            "parent": None,
            "name": "queue-wait",
            "start": parent.submitted_at,
            "end": scatter_start,
            "attrs": {"job_id": parent.id},
        },
        {
            "id": 1,
            "parent": None,
            "name": "run",
            "start": scatter_start,
            "end": merge_end,
            "attrs": {"job_id": parent.id, "shards": parent.shards},
        },
    ]
    next_id = 2
    for child_id, shard_index, started, finished in child_meta:
        spans.append(
            {
                "id": next_id,
                "parent": 1,
                "name": "shard",
                "start": started if started is not None else scatter_start,
                "end": finished if finished is not None else merge_start,
                "attrs": {"job_id": child_id, "shard_index": shard_index},
            }
        )
        next_id += 1
    spans.append(
        {
            "id": next_id,
            "parent": 1,
            "name": "shard-merge",
            "start": merge_start,
            "end": merge_end,
            "attrs": {"n_shards": len(child_meta)},
        }
    )
    return spans


class _JobRun:
    """The unit shipped to a backend: run one resolved scenario.

    Fork-friendly (inherited state, no pickling of the closure) and
    returns only plain JSON-able data, so the same object works on the
    serial, thread, and forked-process backends alike. Cooperative limit
    hits are *returned* (``"limit"``), not raised — the partial test
    store must cross the process boundary so quota-exhausted work still
    warm-starts the next attempt.

    Observability: the run installs a fresh span collector, so every
    ``obs.span`` opened below it (search levels, oracle fits, valuation
    batches, pareto thinning) lands in the returned ``"spans"`` list —
    plain dicts, so they cross the process pipe like everything else.
    With ``profile_path`` set, the whole run is additionally wrapped in
    cProfile and dumped to that path *from the executing process* (the
    fork child shares the filesystem; no profile bytes cross the pipe).
    """

    __slots__ = (
        "resolved",
        "store",
        "timeout",
        "max_oracle_calls",
        "job_id",
        "profile_path",
        "progress_fd",
    )

    def __init__(
        self,
        resolved: ResolvedScenario,
        store: TestStore | None,
        timeout: float | None = None,
        max_oracle_calls: int | None = None,
        job_id: str | None = None,
        profile_path: str | None = None,
        progress_fd: int | None = None,
    ):
        self.resolved = resolved
        self.store = store
        self.timeout = timeout
        self.max_oracle_calls = max_oracle_calls
        self.job_id = job_id
        self.profile_path = profile_path
        #: write end of the scheduler's per-job progress pipe. Inherited
        #: across the process backend's fork, shared directly on the
        #: serial/thread backends — the live-progress channel is the same
        #: either way.
        self.progress_fd = progress_fd

    def __call__(self) -> dict[str, Any]:
        # The deadline starts BEFORE build: both the cooperative clock
        # and the parent's hard-kill clock then begin ~at fork, so slow
        # scenario construction cannot eat the grace margin that lets
        # the cooperative path report (with its partial store) first.
        deadline = (
            time.monotonic() + self.timeout
            if self.timeout is not None else None
        )
        collector = SpanCollector()
        limit = None
        result = None
        emitter_cm = (
            use_emitter(ProgressEmitter(self.progress_fd))
            if self.progress_fd is not None
            else contextlib.nullcontext()
        )
        with use_collector(collector), profile_to_file(
            self.profile_path
        ), emitter_cm:
            with span("run", job_id=self.job_id):
                with span("scenario-build"):
                    runnable = self.resolved.build(store=self.store)
                config = getattr(runnable, "config", None)
                if config is not None and (
                    deadline is not None or self.max_oracle_calls is not None
                ):
                    oracle = getattr(config.estimator, "oracle", None)
                    if oracle is not None:
                        config.estimator.oracle = _OracleGuard(
                            oracle, deadline, self.max_oracle_calls
                        )
                start = time.perf_counter()
                try:
                    result = runnable.run(verify=self.resolved.spec.verify)
                except JobLimitExceeded as exc:
                    limit = exc.reason
                seconds = time.perf_counter() - start
        oracle_calls = None
        store_rows = None
        if config is not None:
            # Single-node algorithms expose their estimator; distributed
            # runs keep private per-worker estimators and report neither.
            oracle_calls = config.estimator.oracle_calls
            store_rows = config.estimator.store.to_payload(
                include_surrogate=False
            )
        return {
            "result": build_payload(result) if result is not None else None,
            "seconds": seconds,
            "oracle_calls": oracle_calls,
            "store_rows": store_rows,
            "limit": limit,
            "spans": collector.spans,
            "spans_dropped": collector.dropped,
        }


class Scheduler:
    """Thread-pool job scheduler with caching, warm-starts, and a WAL."""

    def __init__(
        self,
        registry: ScenarioRegistry | None = None,
        factory: ScenarioFactory | None = None,
        result_cache: ResultCache | None = None,
        oracle_store: OracleStore | None = None,
        journal: JobJournal | None = None,
        backend: str | Backend = "serial",
        n_workers: int = 2,
        max_retries: int = 2,
        poll_interval: float = 0.2,
        scheduler_id: str | None = None,
        lease_ttl: float = 30.0,
        lease_sweep_interval: float | None = None,
        profile_dir: str | Path | None = None,
        metrics_registry: MetricsRegistry | None = None,
        event_capacity: int = EventBus.DEFAULT_CAPACITY,
    ):
        if n_workers < 1:
            raise ServiceError("n_workers must be >= 1")
        if max_retries < 0:
            raise ServiceError("max_retries must be >= 0")
        if scheduler_id is not None and not str(scheduler_id).strip():
            raise ServiceError("scheduler_id must be non-empty")
        self.registry = (
            registry if registry is not None else load_builtin_scenarios()
        )
        self.factory = factory if factory is not None else ScenarioFactory()
        self.result_cache = result_cache
        self.oracle_store = oracle_store
        self.journal = journal
        self.backend = make_backend(backend, 1)
        self.n_workers = int(n_workers)
        self.max_retries = int(max_retries)
        self.queue = JobQueue()
        self.jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._poll_interval = float(poll_interval)
        self._started_at = time.time()
        self.profile_dir = Path(profile_dir) if profile_dir else None
        #: Typed metric series (repro.obs). Each series carries its own
        #: lock, so incrementing under the scheduler lock is cheap and
        #: snapshotting for /v1/metrics needs no scheduler lock at all.
        self.metrics_registry = (
            metrics_registry if metrics_registry is not None
            else MetricsRegistry()
        )
        registry = self.metrics_registry
        self._submitted = registry.counter(
            "repro_jobs_submitted_total", "Jobs accepted by this scheduler"
        )
        self._cache_hits = registry.counter(
            "repro_result_cache_hits_total",
            "Submissions completed instantly from the result cache",
        )
        self._warm_starts = registry.counter(
            "repro_oracle_warm_starts_total",
            "Jobs whose estimator was seeded from the oracle store",
        )
        self._oracle_calls_total = registry.counter(
            "repro_oracle_calls_total", "Real model trainings paid by jobs"
        )
        self._oracle_calls_saved_total = registry.counter(
            "repro_oracle_calls_saved_total",
            "Oracle calls avoided vs each task's cold baseline",
        )
        self._failed_limits = registry.counter(
            "repro_jobs_failed_limit_total",
            "Jobs failed by a per-job resource limit",
            labelnames=("reason",),
        )
        self._dedup_hits = registry.counter(
            "repro_dedup_inflight_hits_total",
            "Submissions deduplicated against an identical in-flight job",
        )
        self._retries_total = registry.counter(
            "repro_job_retries_total",
            "Crash-recovery re-executions charged across all jobs",
        )
        self._queue_wait_hist = registry.histogram(
            "repro_job_queue_wait_seconds",
            "Submission-to-first-pickup wait per job",
        )
        self._run_hist = registry.histogram(
            "repro_job_run_seconds", "Backend run time per executed job"
        )
        self._spans_dropped = registry.counter(
            "repro_trace_spans_dropped_total",
            "Spans dropped by per-run collectors past their retention cap",
        )
        #: live job events (lifecycle + in-run progress), cursor-addressed.
        #: With a journal, sequence numbers are reserved through a file in
        #: the journal directory so cursors survive scheduler restarts.
        self.event_bus = EventBus(
            capacity=event_capacity,
            persist_path=(
                journal.directory / "events.seq"
                if journal is not None else None
            ),
        )
        #: job id → latest partial-skyline refresh (in-memory only: a
        #: replayed running job answers ``?partial=1`` with an empty
        #: front until its re-run emits a fresh one — degrade, don't 500).
        self._partials: dict[str, dict[str, Any]] = {}
        #: job id → epoch of the last progress/heartbeat line received.
        self._last_event_at: dict[str, float] = {}
        #: this process's lease identity in the shared journal.
        self.scheduler_id = (
            str(scheduler_id).strip()
            if scheduler_id is not None
            else f"sched-{uuid.uuid4().hex[:8]}"
        )
        #: seconds a lease stays live without renewal; <= 0 disables leases.
        self.lease_ttl = float(lease_ttl)
        # Leases are opt-in (explicit id): an anonymous scheduler cannot
        # tell its own pre-crash leases from a live peer's after a
        # restart, so it must not write any.
        self._leases_enabled = (
            journal is not None
            and scheduler_id is not None
            and self.lease_ttl > 0
        )
        self._sweep_interval = (
            float(lease_sweep_interval)
            if lease_sweep_interval is not None
            else max(0.5, self.lease_ttl / 3.0)
        )
        self._sweep_stop = threading.Event()
        self._sweep_thread: threading.Thread | None = None
        #: parent job id → shard child job ids (in shard_index order).
        self._shard_children: dict[str, list[str]] = {}
        self._shards_submitted = registry.counter(
            "repro_shards_submitted_total",
            "shards=N submissions fanned out by this scheduler",
        )
        self._shards_merged = registry.counter(
            "repro_shards_merged_total",
            "Sharded parents merged to a final skyline",
        )
        self._lease_events = registry.counter(
            "repro_lease_events_total",
            "Journal lease maintenance events",
            labelnames=("event",),
        )
        #: fingerprint → id of the job currently queued/running for it.
        self._inflight: dict[str, str] = {}
        #: job id → fingerprint (avoids re-hashing at terminal time).
        self._fingerprints: dict[str, str] = {}
        #: primary job id → follower job ids awaiting its result.
        self._followers: dict[str, list[str]] = {}
        self._recovery: dict[str, Any] = {
            "replayed": 0,
            "requeued": 0,
            "retried": 0,
            "refollowed": 0,
            "failed_retry_budget": 0,
            "restored_terminal": 0,
            "unrecoverable": 0,
            "skipped_lines": 0,
            "torn_tail": False,
            "remote_leases": 0,
            "shard_parents": 0,
        }
        if journal is not None:
            self._recover(journal)

    # -- crash recovery ----------------------------------------------------------
    def _recover(self, journal: JobJournal) -> None:
        """Replay the journal into jobs/queue state, then compact it.

        Terminal snapshots become read-only records (``GET /jobs`` keeps
        answering for pre-crash work); ``QUEUED`` snapshots re-enter the
        queue as-is; ``RUNNING`` snapshots were interrupted mid-run, so
        they re-enter the queue with one retry charged — or fail with
        ``failure_reason="retry-budget"`` once ``max_retries`` is spent.
        The post-replay compaction makes the retry accounting durable in
        one segment before any new work is accepted.

        On a *shared* journal dir, non-terminal jobs under a live foreign
        lease belong to a peer scheduler: they are registered read-only
        (so lookups answer) but never queued, never charged a retry, and
        their presence suppresses compaction — rewriting a WAL a live
        peer is appending to would destroy the peer's records.
        """
        summary = journal.replay()
        stats = self._recovery
        stats["skipped_lines"] = summary.skipped
        stats["torn_tail"] = summary.torn_tail
        now = time.time()
        for job_id, snapshot in summary.jobs.items():
            try:
                job = Job.from_snapshot(snapshot)
            except Exception:
                stats["unrecoverable"] += 1
                logger.warning(
                    "journal: cannot reconstruct job %s; dropping it",
                    job_id, exc_info=True,
                )
                continue
            stats["replayed"] += 1
            self.jobs[job.id] = job
            self._register_shard_lineage(job)
            if job.terminal:
                stats["restored_terminal"] += 1
                continue
            if (
                job.lease_owner not in (None, self.scheduler_id)
                and self._lease_live(job, now)
            ):
                # A live peer owns this job: track it, don't touch it.
                stats["remote_leases"] += 1
                continue
            if job.is_shard_parent:
                # Parents never enter the queue; merging is re-elected
                # after replay once every child is terminal. A crash
                # mid-merge costs a re-merge, not a retry charge — the
                # merge is a pure function of the children's results.
                if job.state == JobState.RUNNING:
                    job.state = JobState.QUEUED
                    job.started_at = None
                stats["shard_parents"] += 1
                self._acquire_lease(job)
                continue
            interrupted = job.state == JobState.RUNNING
            if interrupted:
                # Interrupted mid-run: the crash consumed one attempt.
                # The retried/terminal record is appended *before* the
                # compaction below, so even a crash during recovery
                # cannot forget the charge (no infinite retry loop).
                job.retries += 1
                self._retries_total.inc()
                job.started_at = None
                if job.retries > self.max_retries:
                    job.state = JobState.FAILED
                    job.finished_at = time.time()
                    job.updated_at = job.finished_at
                    job.failure_reason = "retry-budget"
                    job.error = (
                        f"crashed {job.retries} time(s); retry budget of "
                        f"{self.max_retries} exhausted"
                    )
                    stats["failed_retry_budget"] += 1
                    journal.record_terminal(job)
                    continue
                job.state = JobState.QUEUED
                stats["retried"] += 1
                journal.record_retried(job)
            if job.shard_index is None:
                # Shard children share their parent's spec fingerprint by
                # construction — content dedup only applies to ordinary
                # jobs.
                fingerprint = job.spec.fingerprint()
                primary_id = self._inflight.get(fingerprint)
                if primary_id is not None:
                    # Identical content is already being revived: restore
                    # the pre-crash primary/follower relationship instead
                    # of running the same work twice.
                    self._followers.setdefault(primary_id, []).append(job.id)
                    stats["refollowed"] += 1
                    continue
                self._fingerprints[job.id] = fingerprint
                self._inflight[fingerprint] = job.id
            if not interrupted:
                stats["requeued"] += 1
            self._acquire_lease(job)
            self.queue.push(job)
        if stats["unrecoverable"]:
            # Compacting would rewrite the journal from in-memory jobs
            # only, durably destroying the snapshots this release could
            # not reconstruct (e.g. after a rollback to code missing a
            # newer field). Keep the raw segments so a later release can
            # still recover them.
            logger.warning(
                "skipping boot compaction: %d journaled job(s) could not "
                "be reconstructed and would be erased",
                stats["unrecoverable"],
            )
        elif self._leases_enabled or stats["remote_leases"]:
            # Shared-journal mode (or a journal carrying foreign leases):
            # another scheduler process may be appending to — or boot-
            # compacting — these very segments right now. With the
            # journal's cross-process directory lock a replay-based fold
            # is safe (peer records are preserved, and exactly one
            # compactor wins the non-blocking exclusive lock); without it
            # never compact — correctness beats reclaiming segment space.
            if journal.supports_cross_process_lock:
                journal.compact(None, blocking=False)
            else:  # pragma: no cover - non-POSIX platform
                logger.info(
                    "skipping boot compaction on a shared journal dir "
                    "(%d live peer lease(s) seen, no cross-process lock)",
                    stats["remote_leases"],
                )
        else:
            journal.compact(self.jobs.values())
        for parent in list(self.jobs.values()):
            if parent.is_shard_parent and not parent.terminal:
                self._settle_parent(parent.id)
        if stats["replayed"]:
            logger.info(
                "journal replay: %d job(s) — %d requeued, %d retried, "
                "%d failed on retry budget, %d terminal restored",
                stats["replayed"], stats["requeued"], stats["retried"],
                stats["failed_retry_budget"], stats["restored_terminal"],
            )

    # -- submissions -------------------------------------------------------------
    def submit(
        self,
        spec: Scenario,
        priority: int = 0,
        timeout: float | None = None,
        max_oracle_calls: int | None = None,
        shards: int | None = None,
        profile: bool = False,
    ) -> Job:
        """Validate, dedup, journal, and enqueue a job.

        Raises :class:`~repro.exceptions.ScenarioError` on an unresolvable
        spec — *before* a job record is created, so bad submissions never
        occupy the queue. A spec whose fingerprint already has a cached
        result completes instantly (``cache_hit=True``) without running;
        one whose fingerprint is already queued/running becomes a
        *follower* of that in-flight job and inherits its result
        (``deduped=True``) instead of running a second time.

        ``shards=N`` instead fans the submission out as ``N`` shard
        children plus a coordinating parent (the returned job); sharded
        submissions skip the result cache and in-flight dedup entirely.
        """
        self.factory.resolve(spec)
        timeout, max_oracle_calls = limits_from_request(
            {"timeout": timeout, "max_oracle_calls": max_oracle_calls}
        )
        shards = shards_from_request({"shards": shards})
        if shards is not None:
            if spec.distributed:
                raise ServiceError(
                    "a submission is sharded either via shards=N or via "
                    "a distributed spec, not both"
                )
            if spec.algorithm_kwargs:
                raise ServiceError(
                    "algorithm_kwargs do not apply to sharded jobs (each "
                    "shard runs the seeded reduce-search)"
                )
            if spec.budget < shards:
                raise ServiceError(
                    f"budget {spec.budget} cannot cover {shards} shard(s); "
                    "each shard needs at least one valuation"
                )
            if timeout is not None or max_oracle_calls is not None:
                raise ServiceError(
                    "per-job limits cannot be enforced on sharded jobs "
                    "(per-shard estimators are private)"
                )
            return self._submit_sharded(
                spec, int(priority), shards, profile=profile
            )
        if spec.distributed:
            # Distributed runs keep private per-worker estimators, so
            # the oracle-boundary guard has nothing to wrap: a quota can
            # never be enforced, and a timeout only via the process
            # backend's hard kill. Reject what we cannot honor instead
            # of accepting a limit that silently does nothing.
            if max_oracle_calls is not None:
                raise ServiceError(
                    "max_oracle_calls cannot be enforced on distributed "
                    "scenarios (per-worker estimators are private)"
                )
            if timeout is not None and not (
                self.backend.name == "process"
                and "fork" in multiprocessing.get_all_start_methods()
            ):
                raise ServiceError(
                    "a timeout on a distributed scenario needs the "
                    "process backend with fork available (hard kill); "
                    f"the {self.backend.name} backend here cannot "
                    "enforce it"
                )
        job = Job(
            spec=spec,
            priority=int(priority),
            timeout=timeout,
            max_oracle_calls=max_oracle_calls,
            profile=bool(profile),
        )
        record = (
            self.result_cache.get(spec)
            if self.result_cache is not None else None
        )
        fingerprint = spec.fingerprint()
        with self._lock:
            self.jobs[job.id] = job
            try:
                self._journal_submitted(job)
            except Exception:
                # Strict WAL: if the submission cannot be made durable it
                # never happened — unwind the in-memory registration so
                # no later submission dedups against a phantom job. The
                # failed append is *indeterminate* (an fsync error can
                # land after the bytes hit the file), so also try a
                # compensating cancelled record; if even that fails, the
                # worst case is one spurious re-run after a restart.
                del self.jobs[job.id]
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                try:
                    self.journal.record_terminal(job)
                except Exception:
                    logger.warning(
                        "job %s: compensating cancellation record also "
                        "failed; the job may replay once", job.id,
                    )
                raise
            self._submitted.inc()
            self._publish_event(JOB_SUBMITTED, job)
            if record is not None:
                job.transition(JobState.RUNNING)
                job.cache_hit = True
                job.result = record["result"]
                job.oracle_calls = 0
                job.transition(JobState.DONE)
                job.trace = _assemble_trace(job, [{
                    "id": 1,
                    "parent": None,
                    "name": "run",
                    "start": job.started_at,
                    "end": job.finished_at,
                    "attrs": {"job_id": job.id, "cache_hit": True},
                }])
                self._observe_timing(job)
                self._cache_hits.inc()
                self._journal_terminal(job)
                self._cond.notify_all()
            else:
                primary_id = self._inflight.get(fingerprint)
                primary = self.jobs.get(primary_id) if primary_id else None
                if primary is not None and not primary.terminal:
                    # Identical work already in flight: don't run it twice.
                    self._followers.setdefault(primary.id, []).append(job.id)
                    self._dedup_hits.inc()
                    self._acquire_lease(job)
                    if (
                        job.priority > primary.priority
                        and primary.state == JobState.QUEUED
                    ):
                        # The follower's urgency transfers to the work
                        # that will produce its result. Re-pushing makes
                        # a higher-priority heap entry; the stale one is
                        # lazily discarded once the job leaves QUEUED.
                        previous = primary.priority
                        primary.priority = job.priority
                        try:
                            self.queue.push(primary)
                        except ServiceError:
                            # Shutting down: the old entry stands, so
                            # the record must keep matching the heap.
                            primary.priority = previous
                        else:
                            try:
                                # Re-journal the primary so the
                                # escalation survives a crash (a
                                # submitted record replaces the snapshot
                                # wholesale on replay).
                                self._journal_submitted(primary)
                            except Exception:
                                logger.warning(
                                    "job %s: could not journal the "
                                    "priority escalation",
                                    primary.id, exc_info=True,
                                )
                    return job
                self._inflight[fingerprint] = job.id
                self._fingerprints[job.id] = fingerprint
                self._acquire_lease(job)
        if job.terminal:  # cache hit: compact outside the lock if due
            self._maybe_compact_journal()
            return job
        try:
            self.queue.push(job)
        except ServiceError:
            # Submission raced a shutdown: the queue is closed, so no
            # worker will ever see this job — don't leave it QUEUED. The
            # cancellation is journaled too: the submitter got an error,
            # so a restart must not resurrect and run this job.
            with self._lock:
                job.transition(JobState.CANCELLED)
                self._journal_terminal(job)
                self._on_terminal(job)
                self._cond.notify_all()
            raise
        return job

    def submit_request(self, body: Mapping[str, Any]) -> Job:
        """Submit from an API body (named scenario ref or inline fields)."""
        spec = scenario_from_request(body, self.registry)
        priority = body.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServiceError(
                f"priority must be an integer, got {priority!r}"
            )
        timeout, max_oracle_calls = limits_from_request(body)
        return self.submit(
            spec,
            priority=priority,
            timeout=timeout,
            max_oracle_calls=max_oracle_calls,
            shards=shards_from_request(body),
            profile=profile_from_request(body),
        )

    # -- sharded jobs ------------------------------------------------------------
    def _register_shard_lineage(self, job: Job) -> None:
        """Index a shard child under its parent (lock held or boot)."""
        if job.parent_id is not None:
            siblings = self._shard_children.setdefault(job.parent_id, [])
            if job.id not in siblings:
                siblings.append(job.id)

    def _submit_sharded(
        self,
        spec: Scenario,
        priority: int,
        shards: int,
        profile: bool = False,
    ) -> Job:
        """Fan one submission out as a parent plus ``shards`` children.

        All ``shards + 1`` records are journaled strictly before any
        child is queued — a submission that cannot be made durable as a
        whole never happened (every already-appended record gets a
        compensating cancel). Returns the parent job.
        """
        parent = Job(
            spec=spec, priority=priority, shards=shards,
            profile=bool(profile),
        )
        children = [
            Job(
                spec=spec,
                priority=priority,
                shards=shards,
                parent_id=parent.id,
                shard_index=index,
                profile=bool(profile),
            )
            for index in range(shards)
        ]
        with self._lock:
            self.jobs[parent.id] = parent
            journaled: list[Job] = []
            try:
                self._journal_submitted(parent)
                journaled.append(parent)
                for child in children:
                    self.jobs[child.id] = child
                    self._journal_submitted(child)
                    journaled.append(child)
            except Exception:
                # Strict WAL, all-or-nothing: unwind the whole family and
                # append compensating cancels for what did get through.
                for job in (parent, *children):
                    self.jobs.pop(job.id, None)
                for job in journaled:
                    job.state = JobState.CANCELLED
                    job.finished_at = time.time()
                    try:
                        self.journal.record_terminal(job)
                    except Exception:
                        logger.warning(
                            "job %s: compensating cancellation record also "
                            "failed; the job may replay once", job.id,
                        )
                raise
            self._submitted.inc()
            self._shard_children[parent.id] = [c.id for c in children]
            self._shards_submitted.inc()
            self._publish_event(JOB_SUBMITTED, parent, shards=shards)
            for child in children:
                self._publish_event(
                    JOB_SUBMITTED,
                    child,
                    parent_id=parent.id,
                    shard_index=child.shard_index,
                )
            self._acquire_lease(parent)
            for child in children:
                self._acquire_lease(child)
        closed = False
        for child in children:
            try:
                self.queue.push(child)
            except ServiceError:
                closed = True
                with self._lock:
                    if child.state == JobState.QUEUED:
                        child.transition(JobState.CANCELLED)
                        self._journal_terminal(child)
                        self._release_lease(child)
                        self._cond.notify_all()
        if closed:
            # Submission raced a shutdown; whatever children did get in
            # settle the parent (FAILED on the cancelled shards) once
            # they finish — or right now if none were accepted.
            self._settle_parent(parent.id)
            raise ServiceError("queue is closed; cannot accept jobs")
        return parent

    def _execute_shard(self, job: Job) -> None:
        """Run one shard child through the backend, then try to settle."""
        with self._lock:
            if job.state != JobState.QUEUED:
                return  # cancelled between pop and execution
            job.transition(JobState.RUNNING)
            self._journal_started(job)
        start = time.perf_counter()
        try:
            resolved = self.factory.resolve(job.spec)
            outcome = self._run_with_progress(
                job,
                lambda wfd: ShardRun(
                    resolved,
                    job.shards,
                    job.shard_index,
                    job_id=job.id,
                    profile_path=self._profile_path(job),
                    progress_fd=wfd,
                ),
            )
            spans = outcome.pop("spans", None)
            self._spans_dropped.inc(int(outcome.pop("spans_dropped", 0) or 0))
            with self._lock:
                job.result = outcome
                job.run_seconds = time.perf_counter() - start
                job.trace = _assemble_trace(job, spans)
                self._stamp_profile(job)
                job.transition(JobState.DONE)
                self._observe_timing(job)
                self._journal_terminal(job)
                self._release_lease(job)
                self._cond.notify_all()
        except Exception as exc:  # noqa: BLE001 — per-shard isolation
            logger.warning(
                "shard %s/%s of job %s failed: %s",
                job.shard_index, job.shards, job.parent_id, exc,
            )
            with self._lock:
                job.error = f"{type(exc).__name__}: {exc}"
                job.failure_reason = "error"
                job.run_seconds = time.perf_counter() - start
                job.transition(JobState.FAILED)
                self._journal_terminal(job)
                self._release_lease(job)
                self._cond.notify_all()
        self._settle_parent(job.parent_id)
        self._maybe_compact_journal()

    def _settle_parent(self, parent_id: str | None) -> None:
        """Merge (or fail) a parent once every shard child is terminal.

        Whichever caller finds the parent still ``QUEUED`` with all
        children terminal wins the merge election (``QUEUED → RUNNING``
        under the lock); everyone else returns. The merge itself — and
        its optional oracle re-scoring — runs outside the lock.
        """
        if parent_id is None:
            return
        with self._lock:
            parent = self.jobs.get(parent_id)
            if parent is None or parent.terminal:
                return
            child_ids = self._shard_children.get(parent_id, [])
            children = [
                self.jobs[cid] for cid in child_ids if cid in self.jobs
            ]
            expected = parent.shards or 0
            if len(children) < expected or not all(
                c.terminal for c in children
            ):
                return
            if parent.state != JobState.QUEUED:
                return  # another worker (or scheduler) is already merging
            children.sort(key=lambda c: c.shard_index or 0)
            failed = [c for c in children if c.state != JobState.DONE]
            parent.transition(JobState.RUNNING)
            self._journal_started(parent)
            if failed:
                sample = "; ".join(
                    f"shard {c.shard_index}: {c.state}"
                    + (f" ({c.error})" if c.error else "")
                    for c in failed[:3]
                )
                parent.error = (
                    f"{len(failed)} of {len(children)} shard(s) did not "
                    f"finish: {sample}"
                )
                parent.failure_reason = "shard"
                parent.transition(JobState.FAILED)
                self._journal_terminal(parent)
                self._release_lease(parent)
                self._on_terminal(parent)
                self._cond.notify_all()
                return
            merge_input = [dict(c.result or {}) for c in children]
            child_meta = [
                (c.id, c.shard_index, c.started_at, c.finished_at)
                for c in children
            ]
        merge_started_at = time.time()
        start = time.perf_counter()
        try:
            resolved = self.factory.resolve(parent.spec)
            payload = merge_shard_results(resolved, merge_input)
        except Exception as exc:  # noqa: BLE001 — isolate the merge too
            logger.warning("merge for job %s failed: %s", parent_id, exc)
            with self._lock:
                if parent.state != JobState.RUNNING:
                    return
                parent.error = f"{type(exc).__name__}: {exc}"
                parent.failure_reason = "error"
                parent.run_seconds = time.perf_counter() - start
                parent.transition(JobState.FAILED)
                self._journal_terminal(parent)
                self._release_lease(parent)
                self._on_terminal(parent)
                self._cond.notify_all()
            return
        merge_finished_at = time.time()
        with self._lock:
            if parent.state != JobState.RUNNING:
                return  # raced by a peer's terminal import
            parent.result = payload
            parent.run_seconds = time.perf_counter() - start
            parent.trace = _parent_trace(
                parent, child_meta, merge_started_at, merge_finished_at
            )
            parent.transition(JobState.DONE)
            self._observe_timing(parent)
            self._journal_terminal(parent)
            self._release_lease(parent)
            self._shards_merged.inc()
            self._on_terminal(parent)
            self._cond.notify_all()
        self._maybe_compact_journal()

    # -- journal hooks (lock held) -----------------------------------------------
    # Appends (one fsync'd line, single-digit ms) deliberately stay under
    # the scheduler lock: the WAL record must be durable before anyone
    # can observe the transition (wait()/GET /jobs answer under the same
    # lock), and jobs run for seconds-to-minutes, so the sync cost is
    # noise. Only compaction — an O(retained jobs) rewrite — runs outside
    # it; an append can briefly queue behind one on the journal's own
    # lock, bounded by the journal's terminal-retention cap.
    def _journal_submitted(self, job: Job) -> None:
        """Strict WAL write: a submission the journal cannot record is a
        submission durability cannot honor, so the error propagates."""
        if self.journal is not None:
            self.journal.record_submitted(job)

    def _journal_started(self, job: Job) -> None:
        if self.journal is not None:
            try:
                self.journal.record_started(job)
            except Exception:
                logger.warning(
                    "job %s: could not journal the started record",
                    job.id, exc_info=True,
                )
        self._publish_event(JOB_STARTED, job)

    def _journal_terminal(self, job: Job) -> None:
        # Best-effort: the work is already done (or failed) — a journal
        # I/O error must not corrupt the in-memory lifecycle. Worst case
        # the record replays as interrupted and the job re-runs once.
        if self.journal is not None:
            try:
                self.journal.record_terminal(job)
            except Exception:
                logger.warning(
                    "job %s: could not journal the %s record",
                    job.id, job.state, exc_info=True,
                )
        # Every terminal site funnels through here, so this one hook
        # publishes the terminal event and retires the live-progress
        # bookkeeping (partials are only meaningful while running).
        self._partials.pop(job.id, None)
        self._last_event_at.pop(job.id, None)
        event_type = _TERMINAL_EVENTS.get(job.state)
        if event_type is not None:
            extra: dict[str, Any] = {"run_seconds": job.run_seconds}
            if job.error:
                extra["error"] = job.error
            summary = summarize_result(job.result)
            if summary:
                extra["summary"] = summary
            self._publish_event(event_type, job, **extra)

    # -- event bus ---------------------------------------------------------------
    def _publish_event(self, type: str, job: Job, **data: Any) -> None:
        """Best-effort bus publish (safe under the scheduler lock — the
        bus carries its own lock and never calls back into the scheduler)."""
        try:
            self.event_bus.publish(
                type, job_id=job.id, state=job.state, **data
            )
        except Exception:  # pragma: no cover - bus publish is in-memory
            logger.warning(
                "could not publish %s for job %s", type, job.id,
                exc_info=True,
            )

    def events(
        self,
        after: int = 0,
        timeout: float = 0.0,
        limit: int = 256,
        job_id: str | None = None,
    ) -> dict[str, Any]:
        """The ``GET /v1/events`` payload: events past a cursor.

        ``timeout > 0`` long-polls until an event lands or the timeout
        expires. ``job_id`` filters to one job — including, for a shard
        parent, all of its shard children.
        """
        job_ids: Collection[str] | None = None
        if job_id is not None:
            with self._lock:
                if job_id not in self.jobs:
                    raise UnknownJobError(f"unknown job id {job_id!r}")
                job_ids = {job_id, *self._shard_children.get(job_id, [])}
        if timeout > 0:
            events, next_cursor, dropped = self.event_bus.wait(
                after, timeout=timeout, limit=limit, job_ids=job_ids
            )
        else:
            events, next_cursor, dropped = self.event_bus.after(
                after, limit=limit, job_ids=job_ids
            )
        return {
            "events": events,
            "next_cursor": next_cursor,
            "dropped": dropped,
            "last_seq": self.event_bus.last_seq,
        }

    # -- live progress ingestion ---------------------------------------------------
    def _drain_progress(self, rfd: int, job_id: str) -> None:
        """Read one job's progress pipe until EOF (own thread per run)."""
        try:
            with os.fdopen(rfd, "r", encoding="utf-8", errors="replace") as fh:
                drain_progress(
                    fh,
                    lambda kind, data: self._ingest_progress(
                        job_id, kind, data
                    ),
                )
        except Exception:  # pragma: no cover - drain must never crash a worker
            logger.warning(
                "progress drain for job %s failed", job_id, exc_info=True
            )

    def _ingest_progress(
        self, job_id: str, kind: str, data: dict[str, Any]
    ) -> None:
        """Fold one pipe message into job state, then publish it."""
        now = time.time()
        front_size = 0
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None or job.terminal:
                return
            self._last_event_at[job_id] = now
            if kind == "heartbeat":
                # Liveness only: refresh counters quietly, never publish —
                # heartbeats would crowd real events out of the ring.
                if data:
                    merged = dict(job.progress or {})
                    merged.update(data)
                    job.progress = merged
                return
            if kind == "progress":
                merged = dict(job.progress or {})
                merged.update(data)
                job.progress = merged
            elif kind == "partial":
                entries = data.get("entries") or []
                front_size = len(entries)
                self._partials[job_id] = {
                    "entries": entries,
                    "n_total": int(data.get("n_total", front_size)),
                    "truncated": bool(data.get("truncated", False)),
                    "updated_at": now,
                }
            else:
                return  # unknown kinds are forward-compatible no-ops
        if kind == "progress":
            self._publish_event(JOB_PROGRESS, job, **data)
        elif kind == "partial":
            self._publish_event(
                JOB_PARTIAL,
                job,
                front_size=front_size,
                n_total=int(data.get("n_total", front_size)),
            )

    def _run_with_progress(self, job: Job, make_thunk, timeout=None):
        """Run a backend thunk with a live progress pipe attached.

        Opens one ``os.pipe()`` per run: the write end goes into the
        thunk (inherited through the process backend's fork; shared
        directly in-process otherwise), a drain thread ingests JSON lines
        from the read end until EOF — which arrives once the run settles
        and the parent's write end below is closed (the fork child's copy
        dies with the child).
        """
        rfd, wfd = os.pipe()
        drain = threading.Thread(
            target=self._drain_progress,
            args=(rfd, job.id),
            name=f"repro-progress-{job.id}",
            daemon=True,
        )
        drain.start()
        try:
            return self.backend.run_one(make_thunk(wfd), timeout=timeout)
        finally:
            try:
                os.close(wfd)
            except OSError:  # pragma: no cover - double close cannot happen
                pass
            drain.join(timeout=5.0)

    def _maybe_compact_journal(self) -> None:
        """Fold the journal once it outgrows its segment budget.

        Deliberately called *outside* the scheduler lock — compaction
        rewrites every snapshot with fsyncs, far too slow to stall
        submits, metrics, and every other worker's terminal path — and
        therefore replay-based: the journal's own lock orders the fold
        against concurrent appends, so no transition recorded before it
        can be lost.
        """
        if self.journal is None:
            return
        if self._leases_enabled or self._peer_active():
            # Shared-journal mode: a peer process may be appending to the
            # same WAL. The fold below is replay-based (jobs=None), so
            # peer records are preserved, and the journal's cross-process
            # directory lock orders it against peer appends and elects
            # exactly one compactor (losers skip, non-blocking). Without
            # flock there is no such ordering — never compact then;
            # correctness beats reclaiming segment space. A peer that has
            # not leased anything yet is invisible, so an explicit
            # ``scheduler_id`` takes this gated path outright rather than
            # trusting `_peer_active` alone.
            if not self.journal.supports_cross_process_lock:
                return  # pragma: no cover - non-POSIX platform
        try:
            self.journal.maybe_compact()
        except Exception:
            logger.warning("journal compaction failed", exc_info=True)

    # -- journal leases ----------------------------------------------------------
    def _lease_active(self) -> bool:
        """Leases exist only with a journal, an explicit id, and a TTL."""
        return self._leases_enabled

    def _lease_live(self, job: Job, now: float) -> bool:
        """True while ``job``'s lease has an owner and has not expired."""
        return (
            job.lease_owner is not None
            and job.lease_expires_at is not None
            and job.lease_expires_at > now
        )

    def _acquire_lease(self, job: Job, action: str = "acquired") -> None:
        """Claim (or renew) ``job`` for this scheduler (lock held).

        Best-effort: a lease record that cannot be appended only widens
        the adoption window for peers — it never blocks the work itself.
        """
        if not self._lease_active():
            return
        try:
            self.journal.record_lease(
                job.id, action, self.scheduler_id, self.lease_ttl
            )
        except Exception:
            logger.warning(
                "job %s: could not journal the lease-%s record",
                job.id, action, exc_info=True,
            )
        job.lease_owner = self.scheduler_id
        job.lease_expires_at = time.time() + self.lease_ttl

    def _release_lease(self, job: Job) -> None:
        """Drop this scheduler's lease at terminal time (lock held)."""
        if not self._lease_active() or job.lease_owner != self.scheduler_id:
            return
        try:
            self.journal.record_lease(job.id, "released", self.scheduler_id)
        except Exception:
            logger.warning(
                "job %s: could not journal the lease-released record",
                job.id, exc_info=True,
            )
        job.lease_owner = None
        job.lease_expires_at = None

    def _peer_active(self) -> bool:
        """True while any tracked non-terminal job is live-leased by a peer.

        Deliberately not gated on leases being enabled *here*: an
        anonymous scheduler pointed at a shared journal dir must still
        notice live foreign leases before compacting.
        """
        now = time.time()
        with self._lock:
            return any(
                not job.terminal
                and job.lease_owner not in (None, self.scheduler_id)
                and self._lease_live(job, now)
                for job in self.jobs.values()
            )

    def _adopt_locked(self, job: Job, stats: dict[str, int]) -> None:
        """Take over an unleased/expired non-terminal job (lock held).

        A ``RUNNING`` orphan died under its previous owner mid-run, so
        adoption charges the usual crash retry (failing it outright with
        ``failure_reason="retry-budget"`` once the budget is spent);
        ``QUEUED`` orphans are simply re-queued under our lease. Parents
        are never queued — adopting one just claims the merge.
        """
        if job.state == JobState.RUNNING and not job.is_shard_parent:
            job.retries += 1
            self._retries_total.inc()
            job.started_at = None
            if job.retries > self.max_retries:
                job.state = JobState.FAILED
                job.finished_at = time.time()
                job.updated_at = job.finished_at
                job.failure_reason = "retry-budget"
                job.error = (
                    f"crashed {job.retries} time(s); retry budget of "
                    f"{self.max_retries} exhausted"
                )
                self.jobs[job.id] = job
                self._register_shard_lineage(job)
                self._journal_terminal(job)
                self._cond.notify_all()
                return
            job.state = JobState.QUEUED
            try:
                self.journal.record_retried(job)
            except Exception:
                logger.warning(
                    "job %s: could not journal the adoption retry",
                    job.id, exc_info=True,
                )
        elif job.is_shard_parent and job.state == JobState.RUNNING:
            # The previous owner died mid-merge; merging is a pure
            # function of the children's results, so just re-elect.
            job.state = JobState.QUEUED
            job.started_at = None
        self.jobs[job.id] = job
        self._register_shard_lineage(job)
        self._acquire_lease(job)
        stats["adopted"] += 1
        self._lease_events.inc(event="adopted")
        if not job.is_shard_parent:
            try:
                self.queue.push(job)
            except ServiceError:
                pass  # shutting down; the journal still holds the job

    def sweep_leases(self) -> dict[str, int]:
        """One lease maintenance pass: renew ours, adopt the expired.

        Renews every non-terminal job this scheduler owns, then replays
        the shared journal to (a) import jobs a peer scheduler created
        or finished since the last pass, and (b) *adopt* non-terminal
        jobs whose lease has expired — a SIGKILLed peer stops renewing,
        so after one TTL its orphans are picked up here, with the usual
        crash-retry charge for work that died ``RUNNING``. Runs
        periodically on a background thread (see :meth:`start`); public
        and synchronous so tests and operators can force a pass.
        Returns the pass's counts (``renewed``/``imported``/``adopted``/
        ``expired``).
        """
        stats = {"renewed": 0, "imported": 0, "adopted": 0, "expired": 0}
        if not self._lease_active():
            return stats
        with self._lock:
            for job in self.jobs.values():
                if not job.terminal and job.lease_owner == self.scheduler_id:
                    self._acquire_lease(job, action="renewed")
                    stats["renewed"] += 1
                    self._lease_events.inc(event="renewed")
        try:
            summary = self.journal.replay()
        except Exception:
            logger.warning("lease sweep: journal replay failed",
                           exc_info=True)
            return stats
        now = time.time()
        with self._lock:
            for job_id, snapshot in summary.jobs.items():
                known = self.jobs.get(job_id)
                if known is not None and (
                    known.terminal
                    or known.lease_owner in (None, self.scheduler_id)
                ):
                    # Terminal records never change, and jobs we own (or
                    # that pre-date leases) are authoritative in memory.
                    continue
                try:
                    job = Job.from_snapshot(snapshot)
                except Exception:
                    continue
                if job.terminal:
                    # A peer finished it: import the outcome wholesale so
                    # lookups/waits here see the result too.
                    self.jobs[job_id] = job
                    self._register_shard_lineage(job)
                    stats["imported"] += 1
                    self._lease_events.inc(event="imported")
                    self._cond.notify_all()
                    continue
                if (
                    job.lease_owner not in (None, self.scheduler_id)
                    and self._lease_live(job, now)
                ):
                    # Still under a live foreign lease: track read-only.
                    self.jobs[job_id] = job
                    self._register_shard_lineage(job)
                    if known is None:
                        stats["imported"] += 1
                        self._lease_events.inc(event="imported")
                    continue
                if job.lease_owner is not None:
                    stats["expired"] += 1
                    self._lease_events.inc(event="expired_seen")
                self._adopt_locked(job, stats)
            parents = [
                p.id
                for p in self.jobs.values()
                if p.is_shard_parent and not p.terminal
            ]
        for parent_id in parents:
            self._settle_parent(parent_id)
        return stats

    def _sweep_loop(self) -> None:
        """Background lease maintenance until :meth:`stop`."""
        while not self._sweep_stop.wait(self._sweep_interval):
            try:
                with log_context(scheduler_id=self.scheduler_id):
                    self.sweep_leases()
            except Exception:  # pragma: no cover - absolute backstop
                logger.exception("lease sweep failed")

    # -- dedup bookkeeping (lock held) -------------------------------------------
    def _on_terminal(self, job: Job) -> None:
        """Release in-flight dedup state and settle followers.

        A primary that finished ``DONE`` completes its followers by copy
        (``deduped=True``); one that failed or was cancelled promotes its
        first still-queued follower into the queue (the work is still
        owed) and re-chains the rest behind it.
        """
        fingerprint = self._fingerprints.pop(job.id, None)
        if fingerprint is not None and (
            self._inflight.get(fingerprint) == job.id
        ):
            del self._inflight[fingerprint]
        followers = [
            self.jobs[fid]
            for fid in self._followers.pop(job.id, [])
            if fid in self.jobs
        ]
        waiting = [f for f in followers if f.state == JobState.QUEUED]
        if not waiting:
            return
        if job.state == JobState.DONE:
            for follower in waiting:
                follower.transition(JobState.RUNNING)
                follower.deduped = True
                follower.result = job.result
                follower.oracle_calls = 0
                follower.run_seconds = 0.0
                follower.transition(JobState.DONE)
                self._journal_terminal(follower)
            return
        promoted, rest = waiting[0], waiting[1:]
        if fingerprint is not None:
            self._inflight[fingerprint] = promoted.id
            self._fingerprints[promoted.id] = fingerprint
        if rest:
            self._followers[promoted.id] = [f.id for f in rest]
        try:
            self.queue.push(promoted)
        except ServiceError:  # shutting down: nobody left to run it
            if self.journal is not None:
                # Journal-aware shutdown keeps queued work: the
                # followers replay as QUEUED and re-run on next boot.
                return
            if fingerprint is not None and (
                self._inflight.get(fingerprint) == promoted.id
            ):
                del self._inflight[fingerprint]
            self._fingerprints.pop(promoted.id, None)
            self._followers.pop(promoted.id, None)
            for follower in waiting:
                follower.transition(JobState.CANCELLED)
                self._journal_terminal(follower)

    # -- lookups -----------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        """Look one job up by id; unknown ids raise ``UnknownJobError``."""
        with self._lock:
            try:
                return self.jobs[job_id]
            except KeyError:
                raise UnknownJobError(
                    f"unknown job id {job_id!r}"
                ) from None

    def describe(self, job_id: str, include_result: bool = False) -> dict:
        """One job's API payload, with shard lineage for parents.

        Parents additionally carry ``shard_jobs`` — id, ``shard_index``,
        and state per child, in shard order — so ``GET /v1/jobs/{id}``
        shows scatter progress without N extra lookups.
        """
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"unknown job id {job_id!r}")
            payload = job.to_payload(include_result=include_result)
            if job.is_shard_parent:
                children = sorted(
                    (
                        self.jobs[cid]
                        for cid in self._shard_children.get(job_id, [])
                        if cid in self.jobs
                    ),
                    key=lambda c: c.shard_index or 0,
                )
                payload["shard_jobs"] = [
                    {
                        "id": c.id,
                        "shard_index": c.shard_index,
                        "state": c.state,
                    }
                    for c in children
                ]
        return payload

    def list_jobs(self) -> list[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return list(self.jobs.values())

    def cancel(self, job_id: str) -> Job:
        """Cancel a *queued* job; running/terminal jobs are not preemptible.

        Cancelling a sharded parent cascades to its still-queued
        children (running shards finish, but nobody will merge them);
        children themselves are not individually cancellable — cancel
        the parent.
        """
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"unknown job id {job_id!r}")
            if job.shard_index is not None:
                raise NotCancellableError(
                    f"job {job_id} is shard {job.shard_index} of "
                    f"{job.parent_id}; cancel the parent job instead",
                    detail={"parent_id": job.parent_id},
                )
            if job.state != JobState.QUEUED:
                raise NotCancellableError(
                    f"job {job_id} is {job.state}; only queued jobs can "
                    "be cancelled",
                    detail={"state": job.state},
                )
            job.transition(JobState.CANCELLED)
            self._journal_terminal(job)
            self._release_lease(job)
            if job.is_shard_parent:
                for cid in self._shard_children.get(job.id, []):
                    child = self.jobs.get(cid)
                    if child is not None and child.state == JobState.QUEUED:
                        child.transition(JobState.CANCELLED)
                        self._journal_terminal(child)
                        self._release_lease(child)
            self._on_terminal(job)
            self._cond.notify_all()
        self._maybe_compact_journal()
        return job

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads and the lease sweep (idempotent)."""
        if self._threads:
            return
        for index in range(self.n_workers):
            thread = threading.Thread(
                target=self._worker,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self._lease_active() and self._sweep_thread is None:
            self._sweep_stop.clear()
            self._sweep_thread = threading.Thread(
                target=self._sweep_loop,
                name="repro-service-lease-sweep",
                daemon=True,
            )
            self._sweep_thread.start()

    def stop(self, drain: bool = False, timeout: float | None = None) -> None:
        """Shut the pool down.

        ``drain=True`` lets workers finish every queued job first. Without
        it, what happens to queued jobs depends on durability: with a
        journal attached they are *left queued* — the journal holds them,
        and the next scheduler on the same directory re-queues them — and
        without one they are cancelled (nothing would ever remember them).
        In-flight jobs always run to completion (worker threads cannot be
        preempted mid-job).
        """
        # Wake long-poll readers first so nothing waits out a 30s poll
        # while the pool drains (see EventBus.close).
        self.event_bus.close()
        self._sweep_stop.set()
        if self._sweep_thread is not None:
            self._sweep_thread.join(timeout)
            self._sweep_thread = None
        if not drain and self.journal is None:
            with self._lock:
                for job in self.jobs.values():
                    if job.state == JobState.QUEUED:
                        job.transition(JobState.CANCELLED)
                        self._on_terminal(job)
                self._cond.notify_all()
        # Journal-aware non-drain stop must halt the queue outright
        # (drain=False): the jobs left QUEUED would otherwise still be
        # served to workers, running the whole backlog during shutdown.
        self.queue.close(drain=drain or self.journal is None)
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> Scheduler:
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- waiting -----------------------------------------------------------------
    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until a job reaches a terminal state; returns the job."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self.jobs.get(job_id)
                if job is None:
                    raise UnknownJobError(f"unknown job id {job_id!r}")
                if job.terminal:
                    return job
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        raise ServiceError(
                            f"timed out waiting for job {job_id} "
                            f"(still {job.state})"
                        )

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no job is queued or running; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if all(job.terminal for job in self.jobs.values()):
                    return True
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return False

    # -- execution ---------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self.queue.pop(timeout=self._poll_interval)
            if job is None:
                if self.queue.closed:
                    return
                continue
            try:
                # Correlation context for every log line this job emits,
                # from any subsystem on this thread (see logging_util).
                with log_context(
                    job_id=job.id,
                    shard_index=job.shard_index,
                    scheduler_id=self.scheduler_id,
                ):
                    self._execute(job)
            except Exception:  # pragma: no cover - absolute backstop
                logger.exception("worker crashed executing job %s", job.id)

    def _execute(self, job: Job) -> None:
        if job.shard_index is not None:
            self._execute_shard(job)
            return
        with self._lock:
            if job.state != JobState.QUEUED:
                return  # cancelled between pop and execution
            job.transition(JobState.RUNNING)
            self._journal_started(job)
        spec = job.spec
        start = time.perf_counter()
        warm = False
        warm_records = 0
        try:
            resolved = self.factory.resolve(spec)
            key = None
            history = None
            warm_store = None
            if self.oracle_store is not None and not spec.distributed:
                key = task_key(spec)
                # resolved.task builds (or reuses) the shared task; its
                # measure set guards against loading foreign history.
                history = self.oracle_store.load(key, resolved.task.measures)
                if history is not None and len(history):
                    warm_store = history.store
                    warm = True
                    warm_records = len(history)
            # The hard kill gets a grace margin over the cooperative
            # deadline: the cooperative path (which ships the partial
            # test store back for warm-starting the retry) must get the
            # first chance to report; the kill is only the backstop for
            # jobs stuck outside the oracle boundary.
            hard_timeout = (
                None if job.timeout is None
                else job.timeout + max(5.0, 0.25 * job.timeout)
            )
            outcome = self._run_with_progress(
                job,
                lambda wfd: _JobRun(
                    resolved,
                    warm_store,
                    timeout=job.timeout,
                    max_oracle_calls=job.max_oracle_calls,
                    job_id=job.id,
                    profile_path=self._profile_path(job),
                    progress_fd=wfd,
                ),
                timeout=hard_timeout,
            )
            self._spans_dropped.inc(int(outcome.get("spans_dropped", 0) or 0))
            oracle_calls = outcome["oracle_calls"]
            limit = outcome.get("limit")
            spans = outcome.get("spans")
            saved = 0
            if key is not None and outcome["store_rows"] is not None:
                # Persistence is best-effort: the discovery already
                # succeeded (or hit its limit with partial truth worth
                # keeping), and a full disk or unwritable store must not
                # turn a computed result into a FAILED job. A limited
                # run never seeds the cold baseline — its call count is
                # capped, not representative.
                try:
                    self.oracle_store.merge(
                        key,
                        TestStore.from_payload(outcome["store_rows"]),
                        resolved.task.measures,
                        cold_oracle_calls=(
                            None if warm or limit else oracle_calls
                        ),
                    )
                except Exception:
                    logger.warning(
                        "job %s: could not persist oracle history for %s",
                        job.id, key, exc_info=True,
                    )
                baseline = (
                    history.cold_oracle_calls if history is not None else None
                )
                if warm and baseline is not None and oracle_calls is not None:
                    saved = max(0, baseline - oracle_calls)
            if limit is not None:
                self._fail(
                    job,
                    start,
                    warm,
                    warm_records,
                    reason=limit,
                    error=(
                        f"JobLimitExceeded: job hit its "
                        + (
                            f"{job.timeout:g}s wall-clock limit"
                            if limit == "timeout"
                            else f"oracle-call quota of {job.max_oracle_calls}"
                        )
                    ),
                    oracle_calls=oracle_calls,
                    spans=spans,
                )
                return
            if self.result_cache is not None:
                try:
                    self.result_cache.put(
                        spec, outcome["result"], outcome["seconds"]
                    )
                except Exception:
                    logger.warning(
                        "job %s: could not write the result cache entry",
                        job.id, exc_info=True,
                    )
            with self._lock:
                job.result = outcome["result"]
                job.run_seconds = time.perf_counter() - start
                job.oracle_calls = oracle_calls
                job.warm_started = warm
                job.warm_records = warm_records
                job.oracle_calls_saved = saved
                job.trace = _assemble_trace(job, spans)
                self._stamp_profile(job)
                self._oracle_calls_total.inc(oracle_calls or 0)
                self._oracle_calls_saved_total.inc(saved)
                if warm:
                    self._warm_starts.inc()
                job.transition(JobState.DONE)
                self._observe_timing(job)
                self._journal_terminal(job)
                self._on_terminal(job)
                self._cond.notify_all()
            self._maybe_compact_journal()
        except JobLimitExceeded as exc:
            # Hard kill from the process backend: the child is gone, so
            # no partial store rows survive — only the failure does.
            logger.warning("job %s hit its %s limit: %s",
                           job.id, exc.reason, exc)
            self._fail(
                job, start, warm, warm_records,
                reason=exc.reason, error=f"{type(exc).__name__}: {exc}",
            )
        except Exception as exc:  # noqa: BLE001 — per-job failure isolation
            logger.warning("job %s failed: %s", job.id, exc)
            self._fail(
                job, start, warm, warm_records,
                reason="error", error=f"{type(exc).__name__}: {exc}",
            )

    def _fail(
        self,
        job: Job,
        start: float,
        warm: bool,
        warm_records: int,
        reason: str,
        error: str,
        oracle_calls: int | None = None,
        spans: list[dict[str, Any]] | None = None,
    ) -> None:
        with self._lock:
            job.error = error
            job.failure_reason = reason
            job.run_seconds = time.perf_counter() - start
            job.warm_started = warm
            job.warm_records = warm_records
            job.trace = _assemble_trace(job, spans)
            self._stamp_profile(job)
            if oracle_calls is not None:
                job.oracle_calls = oracle_calls
                self._oracle_calls_total.inc(oracle_calls)
            if reason == "timeout":
                self._failed_limits.inc(reason="timeout")
            elif reason == "quota":
                self._failed_limits.inc(reason="quota")
            job.transition(JobState.FAILED)
            self._observe_timing(job)
            self._journal_terminal(job)
            self._on_terminal(job)
            self._cond.notify_all()
        self._maybe_compact_journal()

    # -- observability helpers ---------------------------------------------------
    def _profile_path(self, job: Job) -> str | None:
        """Where this job's pstats dump should land (None: not profiled)."""
        if not job.profile or self.profile_dir is None:
            return None
        return str(self.profile_dir / f"{job.id}.pstats")

    def _stamp_profile(self, job: Job) -> None:
        """Record the profile dump on the job if the run produced one."""
        path = self._profile_path(job)
        if path is not None and Path(path).exists():
            job.profile_path = path

    def _observe_timing(self, job: Job) -> None:
        """Feed the queue-wait/run-time histograms at terminal time."""
        if job.submitted_at is not None and job.started_at is not None:
            self._queue_wait_hist.observe(
                max(0.0, job.started_at - job.submitted_at)
            )
        if job.run_seconds:
            self._run_hist.observe(job.run_seconds)

    # -- introspection -----------------------------------------------------------
    def _job_table_snapshot(self) -> dict[str, Any]:
        """Point-in-time job-table aggregates (by-state counts, shards,
        leases held).

        The only part of the metrics payload that needs the scheduler
        lock — and only for a cheap ``list()`` copy of the job dict; the
        field reads below run lock-free on the copy. Everything else the
        payload reports lives in the metrics registry (own per-series
        locks) or in subsystems with their own locks, so a slow metrics
        scrape can never stall submission or the worker pool.
        """
        now = time.time()
        with self._lock:
            jobs = list(self.jobs.values())
        by_state = {state: 0 for state in JobState.ALL}
        parents = children = children_in_flight = leases_held = 0
        for job in jobs:
            state = job.state
            if state in by_state:
                by_state[state] += 1
            if job.is_shard_parent:
                parents += 1
            elif job.shard_index is not None:
                children += 1
                if state not in JobState.TERMINAL:
                    children_in_flight += 1
            if (
                state not in JobState.TERMINAL
                and job.lease_owner == self.scheduler_id
                and self._lease_live(job, now)
            ):
                leases_held += 1
        return {
            "by_state": by_state,
            "parents": parents,
            "children": children,
            "children_in_flight": children_in_flight,
            "leases_held": leases_held,
        }

    def metrics(self) -> dict[str, Any]:
        """The ``GET /metrics`` payload: queue, jobs, cache, oracle savings,
        per-job limit failures, dedup hits, and journal/recovery state.

        Values come from the typed :mod:`repro.obs` registry plus a brief
        job-table snapshot — the scheduler lock is held only for that
        snapshot's dict copy, never while the payload is being built.
        """
        table = self._job_table_snapshot()
        submitted = self._submitted.value
        cache_hits = self._cache_hits.value
        lookups = submitted if self.result_cache is not None else 0
        metrics: dict[str, Any] = {
            "uptime_seconds": time.time() - self._started_at,
            "workers": self.n_workers,
            "backend": self.backend.name,
            "queue_depth": self.queue.depth,
            "jobs_submitted": submitted,
            "jobs": table["by_state"],
            "result_cache": {
                "enabled": self.result_cache is not None,
                "lookups": lookups,
                "hits": cache_hits,
                "hit_rate": (cache_hits / lookups if lookups else 0.0),
            },
            "dedup": {"inflight_hits": self._dedup_hits.value},
            "limits": {
                "failed_timeout": self._failed_limits.get(reason="timeout"),
                "failed_quota": self._failed_limits.get(reason="quota"),
            },
            "retries": {
                "max_per_job": self.max_retries,
                "total": self._retries_total.value,
            },
            "oracle": {
                "warm_starts": self._warm_starts.value,
                "calls_total": self._oracle_calls_total.value,
                "calls_saved_total": self._oracle_calls_saved_total.value,
            },
            "shards": {
                "submitted": self._shards_submitted.value,
                "merged": self._shards_merged.value,
                "parents": table["parents"],
                "children": table["children"],
                "in_flight": table["children_in_flight"],
            },
            "leases": {
                "enabled": self._lease_active(),
                "owner": self.scheduler_id,
                "ttl_seconds": self.lease_ttl,
                "held": table["leases_held"],
                "renewed": self._lease_events.get(event="renewed"),
                "adopted": self._lease_events.get(event="adopted"),
                "expired_seen": self._lease_events.get(event="expired_seen"),
                "imported": self._lease_events.get(event="imported"),
            },
        }
        # The task cache has its own lock and never calls back into the
        # scheduler. Stub factories (tests) may not carry a task cache;
        # report zeroed counters then.
        task_cache = getattr(self.factory, "task_cache", None)
        stats_fn = getattr(task_cache, "materialization_stats", None)
        metrics["materialization"] = (
            stats_fn()
            if stats_fn is not None
            else {
                "spaces": 0,
                "hits": 0,
                "misses": 0,
                "bytes": 0,
                "entries": 0,
                "evictions": 0,
            }
        )
        if self.journal is not None:
            metrics["journal"] = {
                "enabled": True,
                **self.journal.stats(),
                "recovery": dict(self._recovery),
            }
        else:
            metrics["journal"] = {"enabled": False}
        if self.oracle_store is not None:
            metrics["oracle_store"] = {
                "enabled": True, **self.oracle_store.stats()
            }
        else:
            metrics["oracle_store"] = {"enabled": False}
        metrics["events"] = self.event_bus.stats()
        return metrics

    def metrics_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Registry counters/histograms export natively; point-in-time
        values (queue depth, jobs by state, cache/journal stats) ride
        along as computed gauges. Same locking story as :meth:`metrics`.
        """
        table = self._job_table_snapshot()
        gauges: dict[str, float] = {
            "repro_uptime_seconds": time.time() - self._started_at,
            "repro_workers": self.n_workers,
            "repro_queue_depth": self.queue.depth,
            "repro_shard_children_in_flight": table["children_in_flight"],
            "repro_leases_held": table["leases_held"],
        }
        for state, count in table["by_state"].items():
            gauges[f"repro_jobs_{state}"] = count
        task_cache = getattr(self.factory, "task_cache", None)
        stats_fn = getattr(task_cache, "materialization_stats", None)
        if stats_fn is not None:
            stats = stats_fn()
            for key in ("hits", "misses", "bytes", "entries", "evictions"):
                gauges[f"repro_materialization_{key}"] = stats.get(key, 0)
        if self.journal is not None:
            for key, value in self.journal.stats().items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    gauges[f"repro_journal_{key}"] = value
        for key, value in self.event_bus.stats().items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                gauges[f"repro_events_{key}"] = value
        return render_prometheus(self.metrics_registry, extra_gauges=gauges)

    def trace(self, job_id: str) -> dict[str, Any]:
        """The ``GET /v1/jobs/{id}/trace`` payload: the job's span tree
        source, shard-child traces (parents), and any profile summary.

        Traces persist with the job snapshot, so this answers for
        journal-replayed jobs too — including a parent whose children
        finished under a SIGKILLed peer scheduler.
        """
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"unknown job id {job_id!r}")
            spans = list(job.trace or [])
            shard_traces: list[dict[str, Any]] = []
            if job.is_shard_parent:
                for child_id in self._shard_children.get(job_id, []):
                    child = self.jobs.get(child_id)
                    if child is None:
                        continue
                    shard_traces.append(
                        {
                            "job_id": child.id,
                            "shard_index": child.shard_index,
                            "state": child.state,
                            "spans": list(child.trace or []),
                        }
                    )
                shard_traces.sort(key=lambda c: c["shard_index"] or 0)
            payload: dict[str, Any] = {
                "job_id": job.id,
                "state": job.state,
                "parent_id": job.parent_id,
                "queue_wait_seconds": (
                    max(0.0, job.started_at - job.submitted_at)
                    if job.started_at is not None
                    else None
                ),
                "run_seconds": job.run_seconds,
                "spans": spans,
                "profile": None,
            }
            profile_path = job.profile_path
        if job.is_shard_parent:
            payload["shards"] = shard_traces
        if profile_path is not None:
            profile: dict[str, Any] = {"path": profile_path}
            try:
                profile["summary"] = summarize_profile(profile_path)
            except Exception:
                profile["summary"] = None
            payload["profile"] = profile
        return payload

    def _progress_entry_locked(
        self, job: Job, now: float
    ) -> dict[str, Any]:
        """One job's live-progress snapshot (scheduler lock held)."""
        last = self._last_event_at.get(job.id)
        snapshot = self._partials.get(job.id)
        return {
            "job_id": job.id,
            "shard_index": job.shard_index,
            "state": job.state,
            "progress": dict(job.progress or {}),
            "last_event_age_seconds": (
                max(0.0, now - last) if last is not None else None
            ),
            "partial_front_size": (
                len(snapshot["entries"]) if snapshot else 0
            ),
        }

    def progress(self, job_id: str) -> dict[str, Any]:
        """The ``GET /v1/jobs/{id}/progress`` payload.

        Live counters folded from the job's progress pipe, the age of its
        last sign of life (``last_event_age_seconds`` distinguishes a
        stalled worker from a slow one), and — for a shard parent — the
        same per child, in shard order. Progress is in-memory telemetry:
        after a journal replay it starts empty and refills as the
        re-queued job runs.
        """
        now = time.time()
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"unknown job id {job_id!r}")
            payload = self._progress_entry_locked(job, now)
            if job.is_shard_parent:
                children = sorted(
                    (
                        self.jobs[cid]
                        for cid in self._shard_children.get(job_id, [])
                        if cid in self.jobs
                    ),
                    key=lambda c: c.shard_index or 0,
                )
                shards = [
                    self._progress_entry_locked(child, now)
                    for child in children
                ]
                payload["shards"] = shards
                # Roll the children up so a dashboard can draw one bar
                # for the whole fan-out without summing client-side.
                payload["progress"] = {
                    "n_shards": len(shards),
                    "shards_terminal": sum(
                        1 for c in children if c.terminal
                    ),
                    "n_valuated": sum(
                        int(s["progress"].get("n_valuated", 0) or 0)
                        for s in shards
                    ),
                    "budget": sum(
                        int(s["progress"].get("budget", 0) or 0)
                        for s in shards
                    ),
                    "front_size": sum(
                        s["partial_front_size"] for s in shards
                    ),
                }
        return payload

    def partial_result(self, job_id: str) -> dict[str, Any]:
        """The ``GET /v1/results/{id}?partial=1`` payload.

        A DONE job answers with its full result (``"partial": false``);
        anything else answers with the freshest partial skyline the run
        has shipped — possibly empty. Partial fronts are estimates from
        an unthinned grid and live only in scheduler memory: a replayed
        running job degrades to an empty partial until its re-run emits
        a fresh one. Parents union their children's fronts (deduped by
        bitmap) — a superset of the eventual exact merge.
        """
        now = time.time()
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"unknown job id {job_id!r}")
            if job.state == JobState.DONE:
                return {
                    "job_id": job.id,
                    "state": job.state,
                    "partial": False,
                    "result": job.result,
                }
            entries: list[dict[str, Any]] = []
            n_total = 0
            truncated = False
            updated_at: float | None = None
            if job.is_shard_parent:
                seen_bits: set[Any] = set()
                stamps: list[float] = []
                for cid in self._shard_children.get(job_id, []):
                    snap = self._partials.get(cid)
                    if not snap:
                        continue
                    stamps.append(snap["updated_at"])
                    truncated = truncated or snap["truncated"]
                    n_total += snap["n_total"]
                    for entry in snap["entries"]:
                        bits = entry.get("bits")
                        if bits in seen_bits:
                            continue
                        seen_bits.add(bits)
                        entries.append(entry)
                entries.sort(
                    key=lambda e: (
                        tuple(e.get("performance", {}).values()),
                        str(e.get("bits") or ""),
                    )
                )
                if stamps:
                    updated_at = max(stamps)
            else:
                snap = self._partials.get(job_id)
                if snap:
                    entries = list(snap["entries"])
                    n_total = snap["n_total"]
                    truncated = snap["truncated"]
                    updated_at = snap["updated_at"]
            progress = dict(job.progress or {})
            return {
                "job_id": job.id,
                "state": job.state,
                "partial": True,
                "result": {
                    "entries": entries,
                    "n_total": n_total,
                    "truncated": truncated,
                    "updated_at": updated_at,
                    "age_seconds": (
                        max(0.0, now - updated_at)
                        if updated_at is not None
                        else None
                    ),
                },
                "progress": progress,
            }

    def health(self) -> dict[str, Any]:
        """The deep ``GET /v1/healthz`` payload: liveness vs. readiness.

        ``live`` means the process answers at all (always true when this
        method runs); ``ready`` means the worker pool is started and the
        queue still accepts work. The rest is saturation context: queue
        depth, busy workers, journal append lag, event-bus state, and a
        per-running-job heartbeat age (None until the run's first
        heartbeat lands — or forever, for a worker stuck before its
        first valuation).
        """
        now = time.time()
        with self._lock:
            jobs = list(self.jobs.values())
            running = []
            busy = 0
            for job in jobs:
                if job.state != JobState.RUNNING:
                    continue
                busy += 1
                last = self._last_event_at.get(job.id)
                running.append(
                    {
                        "job_id": job.id,
                        "shard_index": job.shard_index,
                        "heartbeat_age_seconds": (
                            max(0.0, now - last)
                            if last is not None
                            else None
                        ),
                    }
                )
            ready = bool(self._threads) and not self.queue.closed
        journal_info: dict[str, Any] = {
            "enabled": self.journal is not None
        }
        if self.journal is not None:
            last_append = self.journal.last_append_at
            journal_info["append_lag_seconds"] = (
                max(0.0, now - last_append)
                if last_append is not None
                else None
            )
        return {
            "live": True,
            "ready": ready,
            "queue_depth": self.queue.depth,
            "workers": {
                "total": self.n_workers,
                "busy": busy,
                "saturation": (
                    busy / self.n_workers if self.n_workers else 0.0
                ),
            },
            "journal": journal_info,
            "events": self.event_bus.stats(),
            "running_jobs": running,
        }

    def __repr__(self) -> str:
        return (
            f"Scheduler({self.n_workers} workers on {self.backend.name}, "
            f"{len(self.jobs)} jobs, depth {self.queue.depth})"
        )
