"""The worker pool that drains the job queue.

``Scheduler`` owns the whole serving pipeline: submissions are validated
fail-fast through the PR-2 :class:`~repro.scenarios.factory.ScenarioFactory`,
content-hash deduplicated against the persistent
:class:`~repro.scenarios.cache.ResultCache` (an identical job completes
instantly, without ever touching the queue), and otherwise pushed onto the
priority :class:`~repro.service.queue.JobQueue`. Worker threads pop jobs
and execute each one through a PR-1 :mod:`repro.exec` backend's
:meth:`~repro.exec.Backend.run_one` — ``serial`` runs in-thread, while
``process`` forks a child per job so a crashing job cannot take the
service down. Failures are isolated per job: the job ends ``FAILED`` with
the error recorded, and the worker moves on.

With an :class:`~repro.service.store.OracleStore` attached, every job on a
task key warm-starts its estimator from the key's persisted ground truth
and merges its own new truth back in afterwards, so oracle training cost
is paid once per task, not once per job. ``oracle_calls_saved`` is
measured against the cold run that seeded the key's store.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping

from ..core.estimator import TestStore
from ..exceptions import ServiceError
from ..exec import Backend, make_backend
from ..logging_util import get_logger
from ..report import build_payload
from ..scenarios.cache import ResultCache
from ..scenarios.factory import ResolvedScenario, ScenarioFactory
from ..scenarios.registry import ScenarioRegistry, load_builtin_scenarios
from ..scenarios.spec import Scenario
from .jobs import Job, JobState, scenario_from_request
from .queue import JobQueue
from .store import OracleStore, task_key

logger = get_logger("service.scheduler")


class _JobRun:
    """The unit shipped to a backend: run one resolved scenario.

    Fork-friendly (inherited state, no pickling of the closure) and
    returns only plain JSON-able data, so the same object works on the
    serial, thread, and forked-process backends alike.
    """

    __slots__ = ("resolved", "store")

    def __init__(self, resolved: ResolvedScenario, store: TestStore | None):
        self.resolved = resolved
        self.store = store

    def __call__(self) -> dict[str, Any]:
        runnable = self.resolved.build(store=self.store)
        start = time.perf_counter()
        result = runnable.run(verify=self.resolved.spec.verify)
        seconds = time.perf_counter() - start
        config = getattr(runnable, "config", None)
        oracle_calls = None
        store_rows = None
        if config is not None:
            # Single-node algorithms expose their estimator; distributed
            # runs keep private per-worker estimators and report neither.
            oracle_calls = config.estimator.oracle_calls
            store_rows = config.estimator.store.to_payload(
                include_surrogate=False
            )
        return {
            "result": build_payload(result),
            "seconds": seconds,
            "oracle_calls": oracle_calls,
            "store_rows": store_rows,
        }


class Scheduler:
    """Thread-pool job scheduler with caching and oracle warm-starts."""

    def __init__(
        self,
        registry: ScenarioRegistry | None = None,
        factory: ScenarioFactory | None = None,
        result_cache: ResultCache | None = None,
        oracle_store: OracleStore | None = None,
        backend: str | Backend = "serial",
        n_workers: int = 2,
        poll_interval: float = 0.2,
    ):
        if n_workers < 1:
            raise ServiceError("n_workers must be >= 1")
        self.registry = (
            registry if registry is not None else load_builtin_scenarios()
        )
        self.factory = factory if factory is not None else ScenarioFactory()
        self.result_cache = result_cache
        self.oracle_store = oracle_store
        self.backend = make_backend(backend, 1)
        self.n_workers = int(n_workers)
        self.queue = JobQueue()
        self.jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._poll_interval = float(poll_interval)
        self._started_at = time.time()
        self._submitted = 0
        self._cache_hits = 0
        self._warm_starts = 0
        self._oracle_calls_total = 0
        self._oracle_calls_saved_total = 0

    # -- submissions -------------------------------------------------------------
    def submit(self, spec: Scenario, priority: int = 0) -> Job:
        """Validate, dedup against the result cache, and enqueue a job.

        Raises :class:`~repro.exceptions.ScenarioError` on an unresolvable
        spec — *before* a job record is created, so bad submissions never
        occupy the queue. A spec whose fingerprint already has a cached
        result completes instantly (``cache_hit=True``) without running.
        """
        self.factory.resolve(spec)
        job = Job(spec=spec, priority=int(priority))
        record = (
            self.result_cache.get(spec)
            if self.result_cache is not None else None
        )
        with self._lock:
            self.jobs[job.id] = job
            self._submitted += 1
            if record is not None:
                job.transition(JobState.RUNNING)
                job.cache_hit = True
                job.result = record["result"]
                job.oracle_calls = 0
                job.transition(JobState.DONE)
                self._cache_hits += 1
                self._cond.notify_all()
                return job
        try:
            self.queue.push(job)
        except ServiceError:
            # Submission raced a shutdown: the queue is closed, so no
            # worker will ever see this job — don't leave it QUEUED.
            with self._lock:
                job.transition(JobState.CANCELLED)
                self._cond.notify_all()
            raise
        return job

    def submit_request(self, body: Mapping[str, Any]) -> Job:
        """Submit from an API body (named scenario ref or inline fields)."""
        spec = scenario_from_request(body, self.registry)
        priority = body.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServiceError(
                f"priority must be an integer, got {priority!r}"
            )
        return self.submit(spec, priority=priority)

    # -- lookups -----------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        """Look one job up by id; unknown ids raise ``ServiceError``."""
        with self._lock:
            try:
                return self.jobs[job_id]
            except KeyError:
                raise ServiceError(f"unknown job id {job_id!r}") from None

    def list_jobs(self) -> list[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return list(self.jobs.values())

    def cancel(self, job_id: str) -> Job:
        """Cancel a *queued* job; running/terminal jobs are not preemptible."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job id {job_id!r}")
            if job.state != JobState.QUEUED:
                raise ServiceError(
                    f"job {job_id} is {job.state}; only queued jobs can "
                    "be cancelled"
                )
            job.transition(JobState.CANCELLED)
            self._cond.notify_all()
            return job

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.n_workers):
            thread = threading.Thread(
                target=self._worker,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, drain: bool = False, timeout: float | None = None) -> None:
        """Shut the pool down.

        ``drain=True`` lets workers finish every queued job first;
        otherwise queued jobs are cancelled and only in-flight jobs run to
        completion (worker threads cannot be preempted mid-job).
        """
        if not drain:
            with self._lock:
                for job in self.jobs.values():
                    if job.state == JobState.QUEUED:
                        job.transition(JobState.CANCELLED)
                self._cond.notify_all()
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    def __enter__(self) -> Scheduler:
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- waiting -----------------------------------------------------------------
    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until a job reaches a terminal state; returns the job."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self.jobs.get(job_id)
                if job is None:
                    raise ServiceError(f"unknown job id {job_id!r}")
                if job.terminal:
                    return job
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        raise ServiceError(
                            f"timed out waiting for job {job_id} "
                            f"(still {job.state})"
                        )

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no job is queued or running; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if all(job.terminal for job in self.jobs.values()):
                    return True
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return False

    # -- execution ---------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self.queue.pop(timeout=self._poll_interval)
            if job is None:
                if self.queue.closed:
                    return
                continue
            try:
                self._execute(job)
            except Exception:  # pragma: no cover - absolute backstop
                logger.exception("worker crashed executing job %s", job.id)

    def _execute(self, job: Job) -> None:
        with self._lock:
            if job.state != JobState.QUEUED:
                return  # cancelled between pop and execution
            job.transition(JobState.RUNNING)
        spec = job.spec
        start = time.perf_counter()
        warm = False
        warm_records = 0
        try:
            resolved = self.factory.resolve(spec)
            key = None
            history = None
            warm_store = None
            if self.oracle_store is not None and not spec.distributed:
                key = task_key(spec)
                # resolved.task builds (or reuses) the shared task; its
                # measure set guards against loading foreign history.
                history = self.oracle_store.load(key, resolved.task.measures)
                if history is not None and len(history):
                    warm_store = history.store
                    warm = True
                    warm_records = len(history)
            outcome = self.backend.run_one(_JobRun(resolved, warm_store))
            oracle_calls = outcome["oracle_calls"]
            saved = 0
            if key is not None and outcome["store_rows"] is not None:
                # Persistence is best-effort: the discovery already
                # succeeded, and a full disk or unwritable store must not
                # turn a computed result into a FAILED job.
                try:
                    self.oracle_store.merge(
                        key,
                        TestStore.from_payload(outcome["store_rows"]),
                        resolved.task.measures,
                        cold_oracle_calls=None if warm else oracle_calls,
                    )
                except Exception:
                    logger.warning(
                        "job %s: could not persist oracle history for %s",
                        job.id, key, exc_info=True,
                    )
                baseline = (
                    history.cold_oracle_calls if history is not None else None
                )
                if warm and baseline is not None and oracle_calls is not None:
                    saved = max(0, baseline - oracle_calls)
            if self.result_cache is not None:
                try:
                    self.result_cache.put(
                        spec, outcome["result"], outcome["seconds"]
                    )
                except Exception:
                    logger.warning(
                        "job %s: could not write the result cache entry",
                        job.id, exc_info=True,
                    )
            with self._lock:
                job.result = outcome["result"]
                job.run_seconds = time.perf_counter() - start
                job.oracle_calls = oracle_calls
                job.warm_started = warm
                job.warm_records = warm_records
                job.oracle_calls_saved = saved
                self._oracle_calls_total += oracle_calls or 0
                self._oracle_calls_saved_total += saved
                if warm:
                    self._warm_starts += 1
                job.transition(JobState.DONE)
                self._cond.notify_all()
        except Exception as exc:  # noqa: BLE001 — per-job failure isolation
            logger.warning("job %s failed: %s", job.id, exc)
            with self._lock:
                job.error = f"{type(exc).__name__}: {exc}"
                job.run_seconds = time.perf_counter() - start
                job.warm_started = warm
                job.warm_records = warm_records
                job.transition(JobState.FAILED)
                self._cond.notify_all()

    # -- introspection -----------------------------------------------------------
    def metrics(self) -> dict[str, Any]:
        """The ``GET /metrics`` payload: queue, jobs, cache, oracle savings."""
        with self._lock:
            by_state = {state: 0 for state in JobState.ALL}
            for job in self.jobs.values():
                by_state[job.state] += 1
            lookups = (
                self._submitted if self.result_cache is not None else 0
            )
            metrics: dict[str, Any] = {
                "uptime_seconds": time.time() - self._started_at,
                "workers": self.n_workers,
                "backend": self.backend.name,
                "queue_depth": self.queue.depth,
                "jobs_submitted": self._submitted,
                "jobs": by_state,
                "result_cache": {
                    "enabled": self.result_cache is not None,
                    "lookups": lookups,
                    "hits": self._cache_hits,
                    "hit_rate": (
                        self._cache_hits / lookups if lookups else 0.0
                    ),
                },
                "oracle": {
                    "warm_starts": self._warm_starts,
                    "calls_total": self._oracle_calls_total,
                    "calls_saved_total": self._oracle_calls_saved_total,
                },
            }
        if self.oracle_store is not None:
            metrics["oracle_store"] = {
                "enabled": True, **self.oracle_store.stats()
            }
        else:
            metrics["oracle_store"] = {"enabled": False}
        return metrics

    def __repr__(self) -> str:
        return (
            f"Scheduler({self.n_workers} workers on {self.backend.name}, "
            f"{len(self.jobs)} jobs, depth {self.queue.depth})"
        )
