"""A thread-safe priority queue of jobs.

A binary heap ordered by ``(-priority, submission sequence)``: higher
priority pops first, ties are FIFO. Cancellation is *lazy* — a cancelled
job stays in the heap but is discarded (never returned) at pop time, so
cancelling is O(1) and needs no heap surgery; the scheduler flips the
job's state and the queue simply skips anything no longer ``QUEUED``.

``pop`` blocks on a condition variable with an optional timeout and
returns ``None`` once the queue is closed and drained, which is how the
scheduler's worker threads learn to exit.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time

from ..exceptions import ServiceError
from .jobs import Job, JobState


class JobQueue:
    """Priority-ordered, thread-safe, closable queue of :class:`Job`s."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._closed = False
        self._drain_on_close = True

    # -- producers ---------------------------------------------------------------
    def push(self, job: Job) -> None:
        """Enqueue a job; rejects pushes after :meth:`close`."""
        with self._cond:
            if self._closed:
                raise ServiceError("queue is closed; cannot accept jobs")
            heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
            self._cond.notify()

    # -- consumers ---------------------------------------------------------------
    def pop(self, timeout: float | None = None) -> Job | None:
        """The highest-priority queued job, blocking up to ``timeout``.

        Returns ``None`` on timeout, or immediately once the queue is
        closed — after ``close(drain=True)`` only when it also holds no
        queued work, after ``close(drain=False)`` unconditionally (the
        remaining jobs stay queued for someone else, e.g. a journal
        replay). Jobs whose state is no longer ``QUEUED`` (lazily
        cancelled) are dropped on the way.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed and not self._drain_on_close:
                    return None
                self._discard_stale()
                if self._heap:
                    return heapq.heappop(self._heap)[2]
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return None

    def _discard_stale(self) -> None:
        """Drop heap heads that were cancelled while queued (lock held)."""
        while self._heap and self._heap[0][2].state != JobState.QUEUED:
            heapq.heappop(self._heap)

    # -- lifecycle ---------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop accepting pushes and wake every blocked popper.

        ``drain=True`` lets poppers keep consuming the remaining queued
        jobs; ``drain=False`` halts serving immediately — whatever is
        still queued stays queued (the journal-aware shutdown path, where
        those jobs must survive for the next boot's replay).
        """
        with self._cond:
            self._closed = True
            self._drain_on_close = drain
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        """How many genuinely queued (not lazily-cancelled) jobs wait."""
        with self._cond:
            return sum(
                1 for _, _, job in self._heap
                if job.state == JobState.QUEUED
            )

    def __len__(self) -> int:
        return self.depth

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"JobQueue({self.depth} queued, {state})"
