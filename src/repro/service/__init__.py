"""Long-running skyline-generation service: job queue, HTTP API, oracle store.

The ROADMAP's serving layer: instead of one-shot CLI processes that
rebuild their task, retrain their oracles, and discard the test store on
exit, discovery runs as jobs against a persistent service:

* :class:`Job` / :class:`JobState` — one scenario submission with an
  explicit ``QUEUED → RUNNING → DONE | FAILED | CANCELLED`` state machine;
* :class:`JobQueue` — thread-safe priority queue (higher first, FIFO ties,
  lazy cancellation);
* :class:`Scheduler` — a worker pool draining the queue through the
  :mod:`repro.exec` backends, with per-job failure isolation, content-hash
  dedup against the PR-2 :class:`~repro.scenarios.cache.ResultCache`, and
  estimator warm-starts from the oracle store;
* :class:`OracleStore` — persistent, task-keyed ground-truth test stores:
  the first job on a task pays oracle training, every later one inherits
  it (``oracle_calls_saved`` is measured against that cold baseline);
* :class:`JobJournal` — an append-only, fsync'd, segment-rotated JSONL
  write-ahead journal of every job transition; on startup the scheduler
  replays it, restoring terminal records and re-queuing jobs that were
  queued or running at crash time (with a bounded retry budget), so a
  SIGKILL loses no submitted work. Per-job ``timeout`` and
  ``max_oracle_calls`` limits are enforced cooperatively at the oracle
  boundary and by hard child kill on the process backend;
* :class:`ServiceServer` / :class:`ServiceClient` — a stdlib-only JSON
  HTTP API (``POST /jobs``, ``GET /jobs[/{id}]``, ``DELETE /jobs/{id}``,
  ``GET /results/{id}``, ``GET /healthz``, ``GET /metrics``) and its
  typed Python client.

CLI surface: ``repro serve`` boots the service; ``repro submit``,
``repro status``, and ``repro fetch`` talk to it.

Quickstart::

    from repro.service import OracleStore, Scheduler, ServiceClient, ServiceServer

    scheduler = Scheduler(oracle_store=OracleStore("/tmp/oracle-stores"))
    with ServiceServer(scheduler, port=0) as server:
        client = ServiceClient(server.url)
        first = client.run(scenario="smoke-t3-apx")
        second = client.run(task="T3", algorithm="bimodis", budget=10)
        print(second["oracle_calls_saved"], "oracle calls saved")
"""

from .client import DEFAULT_URL, ServiceClient
from .jobs import (
    INLINE_SPEC_FIELDS,
    Job,
    JobState,
    limits_from_request,
    new_job_id,
    scenario_from_request,
    summarize_result,
)
from .journal import JOURNAL_VERSION, JobJournal, ReplaySummary
from .queue import JobQueue
from .scheduler import Scheduler
from .server import ServiceServer
from .store import (
    DEFAULT_ORACLE_STORE_DIR,
    OracleStore,
    TaskHistory,
    default_oracle_store_dir,
    task_key,
)

__all__ = [
    "DEFAULT_ORACLE_STORE_DIR",
    "DEFAULT_URL",
    "INLINE_SPEC_FIELDS",
    "JOURNAL_VERSION",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobState",
    "OracleStore",
    "ReplaySummary",
    "Scheduler",
    "ServiceClient",
    "ServiceServer",
    "TaskHistory",
    "default_oracle_store_dir",
    "limits_from_request",
    "new_job_id",
    "scenario_from_request",
    "summarize_result",
    "task_key",
]
