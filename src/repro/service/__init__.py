"""Long-running skyline-generation service: job queue, HTTP API, oracle store.

The ROADMAP's serving layer: instead of one-shot CLI processes that
rebuild their task, retrain their oracles, and discard the test store on
exit, discovery runs as jobs against a persistent service:

* :class:`Job` / :class:`JobState` — one scenario submission with an
  explicit ``QUEUED → RUNNING → DONE | FAILED | CANCELLED`` state machine;
* :class:`JobQueue` — thread-safe priority queue (higher first, FIFO ties,
  lazy cancellation);
* :class:`Scheduler` — a worker pool draining the queue through the
  :mod:`repro.exec` backends, with per-job failure isolation, content-hash
  dedup against the PR-2 :class:`~repro.scenarios.cache.ResultCache`, and
  estimator warm-starts from the oracle store;
* :class:`OracleStore` — persistent, task-keyed ground-truth test stores:
  the first job on a task pays oracle training, every later one inherits
  it (``oracle_calls_saved`` is measured against that cold baseline);
* :class:`JobJournal` — an append-only, fsync'd, segment-rotated JSONL
  write-ahead journal of every job transition; on startup the scheduler
  replays it, restoring terminal records and re-queuing jobs that were
  queued or running at crash time (with a bounded retry budget), so a
  SIGKILL loses no submitted work. Per-job ``timeout`` and
  ``max_oracle_calls`` limits are enforced cooperatively at the oracle
  boundary and by hard child kill on the process backend;
* :class:`ServiceServer` / :class:`ServiceClient` — a stdlib-only
  versioned JSON HTTP API (``POST /v1/jobs``, ``GET /v1/jobs[/{id}]``
  with filtering/pagination/weak ETags, ``DELETE /v1/jobs/{id}``,
  ``GET /v1/results/{id}``, ``GET /v1/healthz``, ``GET /v1/metrics``;
  the unversioned paths remain as deprecated aliases) and its typed
  Python client — API failures raise precise
  :class:`~repro.exceptions.ApiError` subclasses rebuilt from the
  ``{"error": {code, message, detail}}`` envelope;
* sharded jobs — ``shards=N`` submissions scatter the search across N
  shard children via :class:`ShardRun` (the distributed runtime's
  partitioned seeded search) and merge their local skylines with
  :func:`merge_shard_results` into the parent's result, bit-identical
  to an unsharded run when budgets are exhaustive;
* journal leases — schedulers constructed with an explicit
  ``scheduler_id`` claim jobs via lease records in the shared journal,
  so several scheduler processes can serve one ``--journal-dir``; a
  survivor's sweep (:meth:`Scheduler.sweep_leases`) adopts the expired
  leases of a SIGKILLed peer and finishes its jobs.

CLI surface: ``repro serve`` boots the service; ``repro submit``,
``repro status``, and ``repro fetch`` talk to it.

Quickstart::

    from repro.service import OracleStore, Scheduler, ServiceClient, ServiceServer

    scheduler = Scheduler(oracle_store=OracleStore("/tmp/oracle-stores"))
    with ServiceServer(scheduler, port=0) as server:
        client = ServiceClient(server.url)
        first = client.run(scenario="smoke-t3-apx")
        second = client.run(task="T3", algorithm="bimodis", budget=10)
        print(second["oracle_calls_saved"], "oracle calls saved")
"""

from .client import DEFAULT_URL, ServiceClient
from .jobs import (
    INLINE_SPEC_FIELDS,
    MAX_SHARDS,
    Job,
    JobState,
    limits_from_request,
    new_job_id,
    scenario_from_request,
    shards_from_request,
    summarize_result,
)
from .journal import JOURNAL_VERSION, JobJournal, ReplaySummary
from .queue import JobQueue
from .scheduler import Scheduler
from .server import ServiceServer, job_etag
from .sharding import (
    SHARDED_ALGORITHM,
    ShardRun,
    merge_shard_results,
    shard_budget,
)
from .store import (
    DEFAULT_ORACLE_STORE_DIR,
    OracleStore,
    TaskHistory,
    default_oracle_store_dir,
    task_key,
)

__all__ = [
    "DEFAULT_ORACLE_STORE_DIR",
    "DEFAULT_URL",
    "INLINE_SPEC_FIELDS",
    "JOURNAL_VERSION",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobState",
    "MAX_SHARDS",
    "OracleStore",
    "ReplaySummary",
    "SHARDED_ALGORITHM",
    "Scheduler",
    "ServiceClient",
    "ServiceServer",
    "ShardRun",
    "TaskHistory",
    "default_oracle_store_dir",
    "job_etag",
    "limits_from_request",
    "merge_shard_results",
    "new_job_id",
    "scenario_from_request",
    "shard_budget",
    "shards_from_request",
    "summarize_result",
    "task_key",
]
