"""Bounded-concurrency HTTP serving core: acceptor, mux, worker pool.

The original service used ``ThreadingHTTPServer`` — one thread per
connection, no cap. A burst of clients could spawn thousands of handler
threads, starve the scheduler's worker pool, and park unbounded memory
in half-read requests. This module replaces that with three fixed-size
pieces wired around a *bounded* hand-off queue:

* **Acceptor** — the ``serve_forever`` loop. It only accepts sockets and
  registers them with the mux; it never reads a byte, so a SYN flood or
  slow-loris peer cannot stall it. Accepts beyond ``max_connections``
  are answered with an immediate ``429`` and closed.

* **Mux** — one thread multiplexing every connection that is *between*
  requests (freshly accepted, or kept alive after a response) on a
  ``selectors`` poll. Only when bytes are actually waiting does a
  connection move to the pending queue, so workers never block reading
  a request line that has not arrived. Connections idle past
  ``keepalive_timeout`` are reaped. If the pending queue is full (every
  worker busy and ``max_pending`` hand-offs already waiting), the mux
  answers ``429 Retry-After`` and closes instead of queueing without
  bound — backpressure, not collapse.

* **Workers** — ``http_workers`` threads, each serving exactly one
  request at a time: pop a readable connection, run one
  ``handle_one_request`` under the per-request socket deadline
  (``request_timeout`` — the slow-client guard: a peer that trickles its
  body or never drains its response is disconnected, not waited on),
  then either park the connection back in the mux (keep-alive) or close
  it.

Long-poll requests (``GET /v1/events?timeout=``) park a worker *by
design*; :attr:`PoolConfig.longpoll_slots` bounds how many may do so at
once. The request handler acquires a slot non-blockingly and degrades to
an immediate (``timeout=0``) answer when none is free, so long-polls can
never occupy the whole pool (see ``server._Handler._events``).

Every rejection lands in ``repro_http_rejected_total{reason}``:

========================  ====================================================
reason                    meaning
========================  ====================================================
pending-queue-full        readable connection found ``max_pending`` hand-offs
                          already waiting; answered 429 and closed
max-connections           accept would exceed ``max_connections``; answered
                          429 and closed
admission                 ``POST /v1/jobs`` refused because the scheduler's
                          job queue is at ``admission_queue_depth`` (answered
                          429 + ``Retry-After`` with the error envelope)
longpoll-slots            a long-poll found every slot taken and was answered
                          immediately instead of parking
========================  ====================================================

``repro_http_inflight`` gauges requests currently inside a worker.
"""

from __future__ import annotations

import os
import queue
import selectors
import socket
import threading
import time
from dataclasses import dataclass
from http.server import HTTPServer
from typing import TYPE_CHECKING, Any

from ..logging_util import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .scheduler import Scheduler

logger = get_logger("service.pool")


@dataclass(frozen=True)
class PoolConfig:
    """Bounds for the HTTP serving core (see the module docstring)."""

    #: Fixed number of request-handling threads.
    http_workers: int = 8
    #: Readable connections allowed to wait for a worker before new ones
    #: are answered 429 and closed.
    max_pending: int = 64
    #: Scheduler job-queue depth at which ``POST /v1/jobs`` answers 429 +
    #: ``Retry-After`` instead of enqueueing (admission control).
    admission_queue_depth: int = 256
    #: Workers allowed to park inside a long-poll at once; ``None``
    #: defaults to ``max(1, http_workers // 4)``.
    longpoll_slots: int | None = None
    #: Per-request socket deadline (seconds) for reads *and* writes —
    #: the slow-client guard.
    request_timeout: float = 30.0
    #: Idle kept-alive connections are closed after this many seconds.
    keepalive_timeout: float = 60.0
    #: Open connections (parked + pending + in-flight) beyond which
    #: accepts are answered 429 and closed.
    max_connections: int = 512

    def __post_init__(self) -> None:
        if self.http_workers < 1:
            raise ValueError("http_workers must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.admission_queue_depth < 1:
            raise ValueError("admission_queue_depth must be >= 1")
        if self.longpoll_slots is not None and self.longpoll_slots < 1:
            raise ValueError("longpoll_slots must be >= 1 (or None)")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be > 0")
        if self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")

    @property
    def effective_longpoll_slots(self) -> int:
        if self.longpoll_slots is not None:
            return self.longpoll_slots
        return max(1, self.http_workers // 4)


#: The raw response written when a connection is refused before any
#: request line was read (pending queue or connection cap overflow).
#: A fixed body keeps the write small and the Content-Length honest.
_OVERFLOW_BODY = (
    b'{"error": {"code": "overloaded", "message": '
    b'"server is at capacity; retry with backoff", "detail": {}}}'
)
_OVERFLOW_RESPONSE = (
    b"HTTP/1.1 429 Too Many Requests\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: " + str(len(_OVERFLOW_BODY)).encode() + b"\r\n"
    b"Retry-After: 1\r\n"
    b"Connection: close\r\n"
    b"\r\n" + _OVERFLOW_BODY
)


class _Connection:
    """One accepted socket and its per-connection handler state."""

    __slots__ = ("sock", "addr", "handler", "parked_at")

    def __init__(self, sock: socket.socket, addr: Any) -> None:
        self.sock = sock
        self.addr = addr
        self.handler = None  # created lazily on first dispatch
        self.parked_at = time.monotonic()


class _Mux:
    """Selector thread parking connections that are between requests.

    A self-pipe wakes the poll immediately when a connection is parked
    or the mux is stopped, so dispatch latency is bounded by the kernel,
    not by the poll timeout.
    """

    def __init__(self, server: PooledHTTPServer) -> None:
        self._server = server
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_w, False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._inbox: queue.SimpleQueue[_Connection | None] = (
            queue.SimpleQueue()
        )
        self._stopping = False
        self._thread = threading.Thread(
            target=self._run, name="repro-http-mux", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def park(self, conn: _Connection) -> None:
        """Hand a connection to the mux (thread-safe)."""
        conn.parked_at = time.monotonic()
        self._inbox.put(conn)
        self._wake()

    def stop(self, timeout: float = 5.0) -> None:
        self._stopping = True
        self._wake()
        self._thread.join(timeout)

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:  # pragma: no cover - pipe full: poll is awake
            pass

    def _drain_inbox(self) -> None:
        while True:
            try:
                conn = self._inbox.get_nowait()
            except queue.Empty:
                return
            if conn is None:
                continue
            try:
                self._selector.register(
                    conn.sock, selectors.EVENT_READ, conn
                )
            except (ValueError, KeyError, OSError):
                self._server._close_connection(conn)

    def _run(self) -> None:
        try:
            while not self._stopping:
                events = self._selector.select(timeout=1.0)
                self._drain_inbox()
                for key, _mask in events:
                    if key.data is None:  # the wake pipe
                        try:
                            os.read(self._wake_r, 4096)
                        except OSError:  # pragma: no cover
                            pass
                        continue
                    conn: _Connection = key.data
                    try:
                        self._selector.unregister(conn.sock)
                    except (KeyError, ValueError):  # pragma: no cover
                        pass
                    self._dispatch(conn)
                self._reap_idle()
        finally:
            self._close_all()

    def _dispatch(self, conn: _Connection) -> None:
        """A parked connection became readable: hand it to a worker."""
        # EOF probe: a peer that closed while parked shows readable with
        # nothing to read — close quietly instead of waking a worker.
        try:
            if not conn.sock.recv(1, socket.MSG_PEEK):
                self._server._close_connection(conn)
                return
        except (BlockingIOError, InterruptedError):
            pass  # spurious wakeup: bytes were not actually there yet
        except OSError:
            self._server._close_connection(conn)
            return
        self._server._enqueue_ready(conn)

    def _reap_idle(self) -> None:
        deadline = (
            time.monotonic() - self._server.config.keepalive_timeout
        )
        stale = [
            key.data
            for key in list(self._selector.get_map().values())
            if key.data is not None and key.data.parked_at < deadline
        ]
        for conn in stale:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):  # pragma: no cover
                continue
            self._server._close_connection(conn)

    def _close_all(self) -> None:
        for key in list(self._selector.get_map().values()):
            if key.data is not None:
                try:
                    self._selector.unregister(key.data.sock)
                except (KeyError, ValueError):  # pragma: no cover
                    pass
                self._server._close_connection(key.data)
        self._drain_inbox_closing()
        self._selector.close()
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:  # pragma: no cover
                pass

    def _drain_inbox_closing(self) -> None:
        while True:
            try:
                conn = self._inbox.get_nowait()
            except queue.Empty:
                return
            if conn is not None:
                self._server._close_connection(conn)


class PooledHTTPServer(HTTPServer):
    """A fixed worker pool behind a bounded pending-connection queue.

    Drop-in replacement for ``ThreadingHTTPServer`` in the service: the
    acceptor loop (``serve_forever``) registers connections with the
    mux; ``http_workers`` threads serve one request at a time from the
    pending queue; keep-alive connections are parked back in the mux
    between requests instead of pinning a thread.
    """

    # The acceptor itself never reads, so a generous listen backlog is
    # safe: overflow is decided by max_connections, not the SYN queue.
    request_queue_size = 128
    allow_reuse_address = True

    def __init__(
        self,
        server_address: tuple[str, int],
        RequestHandlerClass: type,
        scheduler: Scheduler,
        config: PoolConfig | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.config = config or PoolConfig()
        self.started_at = time.time()
        self._pending: queue.Queue[_Connection | None] = queue.Queue(
            maxsize=self.config.max_pending
        )
        self._longpoll_slots = threading.BoundedSemaphore(
            self.config.effective_longpoll_slots
        )
        self._conn_lock = threading.Lock()
        self._open_connections = 0
        registry = scheduler.metrics_registry
        self._rejected = registry.counter(
            "repro_http_rejected_total",
            "Connections or requests refused by the serving core",
            labelnames=("reason",),
        )
        self._inflight = registry.gauge(
            "repro_http_inflight",
            "Requests currently being handled by an HTTP worker",
        )
        # Pre-register the per-request series the handler records into,
        # so scrapes see their TYPE lines from boot instead of only
        # after the first completed request.
        registry.counter(
            "repro_http_requests_total",
            "HTTP requests served",
            labelnames=("method", "status"),
        )
        registry.histogram(
            "repro_http_request_seconds",
            "HTTP request handling latency",
        )
        self._workers: list[threading.Thread] = []
        self._mux = _Mux(self)
        self._pool_started = False
        super().__init__(server_address, RequestHandlerClass)

    # -- pool lifecycle ----------------------------------------------------------
    def start_pool(self) -> None:
        """Spawn the mux and the worker threads (idempotent)."""
        if self._pool_started:
            return
        self._pool_started = True
        self._mux.start()
        for index in range(self.config.http_workers):
            thread = threading.Thread(
                target=self._work,
                name=f"repro-http-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self.start_pool()
        super().serve_forever(poll_interval)

    def stop_pool(self, timeout: float = 5.0) -> None:
        """Stop the mux and join the workers (listening socket closed by
        the caller via ``server_close``). Parked long-polls must have
        been woken first (``EventBus.close``), or the join times out."""
        self._mux.stop(timeout)
        for _ in self._workers:
            while True:
                try:
                    self._pending.put_nowait(None)
                    break
                except queue.Full:
                    # Make room for the sentinel: whatever is displaced
                    # was never served, so close it rather than leak it.
                    try:
                        conn = self._pending.get_nowait()
                    except queue.Empty:  # pragma: no cover - race
                        continue
                    if conn is not None:
                        self._close_connection(conn)
        deadline = time.monotonic() + timeout
        for thread in self._workers:
            thread.join(max(0.1, deadline - time.monotonic()))
        self._workers = []
        # Anything still pending was never served: close, don't leak.
        while True:
            try:
                conn = self._pending.get_nowait()
            except queue.Empty:
                break
            if conn is not None:
                self._close_connection(conn)

    # -- acceptor side -----------------------------------------------------------
    def process_request(self, request: socket.socket, client_address) -> None:
        """Accept-path admission: cap total connections, then park.

        Never reads from the socket — the mux moves it to the pending
        queue once bytes are actually waiting.
        """
        with self._conn_lock:
            if self._open_connections >= self.config.max_connections:
                over_cap = True
            else:
                over_cap = False
                self._open_connections += 1
        if over_cap:
            self._reject_raw(request, "max-connections")
            return
        self._mux.park(_Connection(request, client_address))

    def handle_error(self, request, client_address) -> None:  # noqa: D102
        logger.debug(
            "error handling connection from %s", client_address,
            exc_info=True,
        )

    # -- mux/worker plumbing -----------------------------------------------------
    def _enqueue_ready(self, conn: _Connection) -> None:
        """A readable connection: queue for a worker or reject-and-close."""
        try:
            self._pending.put_nowait(conn)
        except queue.Full:
            self._reject_raw(conn.sock, "pending-queue-full")
            self._untrack(conn)

    def _work(self) -> None:
        while True:
            conn = self._pending.get()
            if conn is None:
                return
            self._serve_one(conn)

    def _serve_one(self, conn: _Connection) -> None:
        handler_alive = True
        try:
            if conn.handler is None:
                conn.handler = self._make_handler(conn)
            self._inflight.inc()
            try:
                conn.handler.handle_one_request()
            finally:
                self._inflight.dec()
        except ConnectionError:
            handler_alive = False
        except Exception:
            handler_alive = False
            logger.debug(
                "connection from %s died mid-request", conn.addr,
                exc_info=True,
            )
        if not handler_alive or conn.handler.close_connection:
            self._close_connection(conn)
        else:
            self._mux.park(conn)

    def _make_handler(self, conn: _Connection):
        """Build a per-connection handler without the base-class driver.

        ``BaseRequestHandler.__init__`` would run ``handle()`` and then
        ``finish()`` (closing the files) — but this pool serves one
        request per dispatch and parks the connection in between, so the
        handler object must outlive each dispatch. Construct it bare,
        then run ``setup()`` only.
        """
        handler = self.RequestHandlerClass.__new__(self.RequestHandlerClass)
        handler.request = conn.sock
        handler.client_address = conn.addr
        handler.server = self
        handler.timeout = self.config.request_timeout
        handler.setup()
        handler.close_connection = True  # until a parsed request says not
        return handler

    # -- connection bookkeeping --------------------------------------------------
    def _untrack(self, conn: _Connection) -> None:
        with self._conn_lock:
            self._open_connections = max(0, self._open_connections - 1)

    def _close_connection(self, conn: _Connection) -> None:
        if conn.handler is not None:
            try:
                conn.handler.finish()  # flush + close rfile/wfile
            except Exception:  # noqa: BLE001 - peer may be long gone
                pass
            conn.handler = None
        try:
            self.shutdown_request(conn.sock)
        except OSError:  # pragma: no cover - already closed
            pass
        self._untrack(conn)

    def _reject_raw(self, sock: socket.socket, reason: str) -> None:
        """Answer 429 on a socket no handler ever touched, then close.

        A short send timeout keeps a slow or dead peer from stalling the
        acceptor/mux thread; losing the courtesy response to such a peer
        is fine — the close is the contract.
        """
        try:
            self._rejected.inc(reason=reason)
        except Exception:  # pragma: no cover - metrics must not break accept
            pass
        try:
            sock.settimeout(1.0)
            sock.sendall(_OVERFLOW_RESPONSE)
        except OSError:
            pass
        try:
            self.shutdown_request(sock)
        except OSError:  # pragma: no cover
            pass

    # -- request-level admission ---------------------------------------------------
    def admission_retry_after(self) -> int | None:
        """``None`` to admit a submission, else the Retry-After seconds.

        The hint scales with how far past the admission bound the job
        queue is relative to the worker pool's drain rate, clamped to
        [1, 30] so clients neither hammer nor give up.
        """
        depth = self.scheduler.queue.depth
        limit = self.config.admission_queue_depth
        if depth < limit:
            return None
        workers = max(1, self.scheduler.n_workers)
        return min(30, max(1, 1 + (depth - limit) // workers))

    def count_rejection(self, reason: str) -> None:
        """Record a request-level rejection (admission, longpoll slot)."""
        try:
            self._rejected.inc(reason=reason)
        except Exception:  # pragma: no cover - metrics must not 500
            pass

    def acquire_longpoll_slot(self) -> bool:
        """Non-blocking claim of a long-poll slot (False = degrade)."""
        return self._longpoll_slots.acquire(blocking=False)

    def release_longpoll_slot(self) -> None:
        """Return a slot claimed by :meth:`acquire_longpoll_slot`."""
        try:
            self._longpoll_slots.release()
        except ValueError:  # pragma: no cover - unmatched release is a bug
            logger.warning("unmatched long-poll slot release")

    # -- introspection -----------------------------------------------------------
    def pool_stats(self) -> dict[str, Any]:
        """Serving-core saturation for ``GET /v1/healthz``."""
        with self._conn_lock:
            open_connections = self._open_connections
        return {
            "http_workers": self.config.http_workers,
            "max_pending": self.config.max_pending,
            "pending": self._pending.qsize(),
            "open_connections": open_connections,
            "max_connections": self.config.max_connections,
            "admission_queue_depth": self.config.admission_queue_depth,
            "longpoll_slots": self.config.effective_longpoll_slots,
        }
