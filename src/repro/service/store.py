"""The persistent, task-keyed oracle store shared across jobs.

The paper's estimator ``E`` exists because oracle calls — real model
training — dominate the cost of discovery; its test set ``T`` is
"historically observed performance of M". Within one process that history
lives in a :class:`~repro.core.estimator.TestStore`; this module makes it
*service-owned and persistent*: every finished job's ground-truth records
are merged into one JSON file per task key, and every later job on the
same key warm-starts its estimator from that file. Repeat traffic stops
re-paying oracle training — the first job on a task is the last cold one.

Key = ``(task, scale, seed)``: exactly the tuple that pins the corpus, the
universal join, and the calibrated oracle, so two scenarios share history
iff their oracle answers are interchangeable. Only ``source == "oracle"``
records are persisted — one scenario's surrogate *estimates* must never
reach another scenario's estimator disguised as observed truth.

Writes are read-merge-write under an in-process lock plus a best-effort
``flock`` on a sidecar lock file (where the platform provides ``fcntl``),
with the atomic temp-file + ``os.replace`` idiom: concurrent workers in
one service never tear or lose records, a crashed job never leaves a
truncated file, and two *processes* sharing a store directory serialize
their merges on platforms with ``flock`` (elsewhere a cross-process race
degrades to last-writer-wins, never to a torn file).
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

try:  # Linux/macOS; absent on some platforms — lock degrades gracefully.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from ..core.estimator import TestStore
from ..core.measures import MeasureSet
from ..ioutil import atomic_write_json
from ..logging_util import get_logger
from ..scenarios.spec import Scenario

logger = get_logger("service.store")

FORMAT_VERSION = 1

#: Default store root; override with --oracle-store or $REPRO_ORACLE_STORE_DIR.
DEFAULT_ORACLE_STORE_DIR = "~/.cache/repro/oracle-stores"


def default_oracle_store_dir() -> Path:
    """$REPRO_ORACLE_STORE_DIR used verbatim (if set), else the default."""
    root = os.environ.get("REPRO_ORACLE_STORE_DIR", "")
    if root:
        return Path(root).expanduser()
    return Path(DEFAULT_ORACLE_STORE_DIR).expanduser()


def task_key(spec: Scenario) -> str:
    """The store key a scenario's oracle history belongs to.

    ``(task, scale, seed)`` pins corpus generation and oracle calibration;
    anything else (algorithm, ε, budget) changes *which* states get
    valuated, not what a valuation returns — so histories are shared
    across all of it.
    """
    seed = "auto" if spec.seed is None else str(spec.seed)
    return f"{spec.task}_scale-{spec.scale:g}_seed-{seed}"


@dataclass
class TaskHistory:
    """One task key's loaded history: the test set plus its metadata."""

    store: TestStore
    cold_oracle_calls: int | None = None
    updated_at: float = 0.0

    def __len__(self) -> int:
        return len(self.store)


class OracleStore:
    """Directory of per-task-key oracle histories (``<key>.json``)."""

    def __init__(self, directory: str | Path | None = None):
        self.directory = (
            Path(directory) if directory is not None
            else default_oracle_store_dir()
        )
        self._lock = threading.Lock()

    def path_for(self, key: str) -> Path:
        """The on-disk file a task key's history lives in."""
        return self.directory / f"{key}.json"

    # -- read --------------------------------------------------------------------
    def load(
        self, key: str, measures: MeasureSet | None = None
    ) -> TaskHistory | None:
        """The stored history for a key, or ``None`` when absent/unusable.

        A corrupt file or a measure-set mismatch (a store recorded under a
        different ``P``) reads as "no history" — the job simply runs cold —
        rather than failing the job; the next merge rewrites the file.
        """
        with self._lock:
            payload = self._read(key)
        if payload is None:
            return None
        if measures is not None:
            stored = payload.get("measures")
            if stored is not None and tuple(stored) != measures.names:
                logger.warning(
                    "oracle store %s was recorded for measures %s, "
                    "expected %s; ignoring it", key, stored,
                    list(measures.names),
                )
                return None
        try:
            store = TestStore.from_payload(
                payload["records"],
                n_measures=len(measures) if measures is not None else None,
            )
        except Exception:
            logger.warning("oracle store %s has unusable records; "
                           "ignoring it", key)
            return None
        return TaskHistory(
            store=store,
            cold_oracle_calls=payload.get("cold_oracle_calls"),
            updated_at=payload.get("updated_at", 0.0),
        )

    def _read(self, key: str) -> dict[str, Any] | None:
        """Raw payload for a key (lock held by caller); None on any problem."""
        path = self.path_for(key)
        try:
            with path.open() as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            logger.warning("unreadable oracle store at %s; treating as "
                           "empty", path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != FORMAT_VERSION
            or not isinstance(payload.get("records"), list)
        ):
            return None
        return payload

    # -- write -------------------------------------------------------------------
    def merge(
        self,
        key: str,
        store: TestStore,
        measures: MeasureSet | None = None,
        cold_oracle_calls: int | None = None,
    ) -> int:
        """Fold a finished job's ground truth into the key's history.

        Read-merge-write under the lock: existing records are kept (oracle
        truth wins over estimates per :meth:`TestStore.merge`), the job's
        oracle records are added, and the file is atomically replaced.
        ``cold_oracle_calls`` is recorded once — by whichever job seeded
        the store — and then sticks as the key's cold-run baseline.
        Returns the total number of persisted records.
        """
        with self._lock, self._file_lock(key):
            payload = self._read(key)
            merged = TestStore()
            baseline = cold_oracle_calls
            if payload is not None:
                stored = payload.get("measures")
                compatible = (
                    measures is None or stored is None
                    or tuple(stored) == measures.names
                )
                if compatible:
                    try:
                        merged = TestStore.from_payload(payload["records"])
                    except Exception:
                        merged = TestStore()
                    if payload.get("cold_oracle_calls") is not None:
                        baseline = payload["cold_oracle_calls"]
            oracle_only = TestStore.from_payload(
                store.to_payload(include_surrogate=False)
            )
            merged.merge(oracle_only)
            record = {
                "version": FORMAT_VERSION,
                "key": key,
                "measures": (
                    list(measures.names) if measures is not None else None
                ),
                "cold_oracle_calls": baseline,
                "updated_at": time.time(),
                "records": merged.to_payload(),
            }
            atomic_write_json(self.path_for(key), record)
            return len(merged)

    @contextlib.contextmanager
    def _file_lock(self, key: str):
        """Best-effort cross-process serialization of one key's merge.

        An ``flock`` on a ``<key>.lock`` sidecar: two service processes
        sharing one store directory read-merge-write in turn instead of
        overwriting each other's freshly persisted oracle truth. Where
        ``fcntl`` is unavailable the merge still happens (atomically) —
        only cross-process concurrency degrades to last-writer-wins.
        """
        if fcntl is None:
            yield
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        lock_path = self.directory / f"{key}.lock"
        with lock_path.open("a") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # -- maintenance -------------------------------------------------------------
    def keys(self) -> list[str]:
        """Every task key with a store file on disk, sorted."""
        if not self.directory.is_dir():
            return []
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every store file; returns how many were removed."""
        removed = 0
        with self._lock:
            if self.directory.is_dir():
                for path in self.directory.glob("*.json"):
                    path.unlink(missing_ok=True)
                    removed += 1
        return removed

    def stats(self) -> dict[str, Any]:
        """Per-directory summary: task keys, record counts, total bytes."""
        tasks: dict[str, int] = {}
        total_bytes = 0
        with self._lock:
            for key in self.keys():
                payload = self._read(key)
                if payload is None:
                    continue
                tasks[key] = len(payload["records"])
                try:
                    total_bytes += self.path_for(key).stat().st_size
                except OSError:
                    pass
        return {
            "directory": str(self.directory),
            "task_keys": len(tasks),
            "records": tasks,
            "total_records": sum(tasks.values()),
            "total_bytes": total_bytes,
        }

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:
        return f"OracleStore({str(self.directory)!r}, {len(self)} task keys)"
