"""A typed, stdlib-only Python client for the skyline service.

Thin ``urllib.request`` wrapper over the JSON API: every method returns
the decoded payload dict, and every transport or API failure surfaces as
a :class:`~repro.exceptions.ServiceError` carrying the server's
``{"error": ...}`` message when one exists. :meth:`ServiceClient.wait`
polls a job to a terminal state — the blocking convenience the CLI's
``repro submit --wait`` and the examples build on.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from ..exceptions import ServiceError
from .jobs import JobState

DEFAULT_URL = "http://127.0.0.1:8765"


class ServiceClient:
    """Client for one service base URL (``http://host:port``)."""

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = float(timeout)

    # -- transport ---------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get(
                    "error", ""
                )
            except Exception:
                pass
            raise ServiceError(
                f"{method} {path} failed with HTTP {exc.code}"
                + (f": {detail}" if detail else "")
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from None

    # -- API ---------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    def submit(
        self,
        scenario: str | None = None,
        priority: int = 0,
        timeout: float | None = None,
        max_oracle_calls: int | None = None,
        **spec_fields: Any,
    ) -> dict[str, Any]:
        """``POST /jobs``: a registered scenario by name, or inline fields.

        ``timeout`` (wall-clock seconds) and ``max_oracle_calls`` are
        per-job resource limits; a job that exceeds one ends
        ``FAILED(failure_reason=timeout|quota)``.

        >>> client.submit(scenario="smoke-t3-apx", priority=5)
        >>> client.submit(task="T3", algorithm="apx", budget=10, timeout=60)
        """
        body: dict[str, Any] = dict(spec_fields)
        if scenario is not None:
            body["scenario"] = scenario
        if priority:
            body["priority"] = priority
        if timeout is not None:
            body["timeout"] = timeout
        if max_oracle_calls is not None:
            body["max_oracle_calls"] = max_oracle_calls
        return self._request("POST", "/jobs", body=body)

    def jobs(self) -> list[dict[str, Any]]:
        """``GET /jobs``: every job record, submission order."""
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/{id}``."""
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``DELETE /jobs/{id}`` (only queued jobs are cancellable)."""
        return self._request("DELETE", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict[str, Any]:
        """``GET /results/{id}``: the job record with its full result."""
        return self._request("GET", f"/results/{job_id}")

    # -- conveniences ------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.25,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns its final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in JobState.TERMINAL:
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for job "
                    f"{job_id} (still {record['state']})"
                )
            time.sleep(poll_interval)

    def run(
        self,
        scenario: str | None = None,
        priority: int = 0,
        timeout: float = 300.0,
        job_timeout: float | None = None,
        max_oracle_calls: int | None = None,
        **spec_fields: Any,
    ) -> dict[str, Any]:
        """Submit and wait; raises if the job did not end ``DONE``.

        ``timeout`` bounds this client's *wait* (the job keeps running
        server-side when it expires); ``job_timeout`` and
        ``max_oracle_calls`` are the server-enforced per-job limits,
        forwarded to :meth:`submit`.
        """
        job = self.submit(
            scenario=scenario,
            priority=priority,
            timeout=job_timeout,
            max_oracle_calls=max_oracle_calls,
            **spec_fields,
        )
        record = self.wait(job["id"], timeout=timeout)
        if record["state"] != JobState.DONE:
            raise ServiceError(
                f"job {record['id']} ended {record['state']}"
                + (f": {record['error']}" if record.get("error") else "")
            )
        return record

    def __repr__(self) -> str:
        return f"ServiceClient({self.url!r})"
