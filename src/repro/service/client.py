"""A typed, stdlib-only Python client for the skyline service.

Thin ``urllib.request`` wrapper over the versioned JSON API (every path
goes through ``/v1``): each method returns the decoded payload dict, and
every API failure surfaces as the matching typed exception from the v1
error envelope — ``{"error": {"code", "message", "detail"}}`` maps back
through :data:`~repro.exceptions.API_ERROR_TYPES`, so a 404 raises
:class:`~repro.exceptions.UnknownJobError`, a cancel conflict raises
:class:`~repro.exceptions.NotCancellableError`, and so on. All of them
subclass :class:`~repro.exceptions.ServiceError`, so existing
``except ServiceError`` call sites keep working unchanged.

:meth:`ServiceClient.wait` follows the server's cursor-based event
stream (``GET /v1/events`` long-poll): the client sleeps inside the
server until the job's next event instead of polling on an interval.
Against a pre-events server it falls back transparently to conditional
``ETag`` polling — every unchanged poll is answered ``304 Not Modified``
with an empty body, so watching a long job costs headers, not repeated
job records. :meth:`ServiceClient.watch` exposes the same stream as an
iterator of raw events; :meth:`ServiceClient.progress` and
``result(partial=True)`` read a running job's live counters and partial
skyline.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Iterator

from ..exceptions import API_ERROR_TYPES, ServiceError, UnknownRouteError
from ..obs.events import TERMINAL_EVENT_TYPES
from .jobs import JobState

DEFAULT_URL = "http://127.0.0.1:8765"

#: HTTP statuses the client retries with backoff: admission-control
#: rejections (429, bounded-concurrency serving) and transient
#: unavailability (503, e.g. a proxy mid-restart).
RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceClient:
    """Client for one service base URL (``http://host:port``).

    Requests answered ``429``/``503`` are retried up to ``retries``
    times with jittered exponential backoff; a ``Retry-After`` header
    (the server's admission-control hint) is honored as the floor of
    each delay. ``retries=0`` disables retrying — the typed
    :class:`~repro.exceptions.ServiceOverloadedError` surfaces
    immediately instead.
    """

    def __init__(
        self,
        url: str = DEFAULT_URL,
        timeout: float = 30.0,
        retries: int = 4,
        backoff_base: float = 0.25,
        backoff_max: float = 8.0,
    ):
        self.url = url.rstrip("/")
        self.timeout = float(timeout)
        self.retries = max(0, int(retries))
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)

    def _backoff_delay(
        self, attempt: int, retry_after: str | None
    ) -> float:
        """Delay before retry ``attempt`` (0-based), in seconds.

        Jittered exponential: uniform over ``(0, base * 2**attempt]``,
        capped at ``backoff_max`` — full jitter desynchronizes a herd of
        clients all rejected at once. A parseable ``Retry-After`` floors
        the delay: the server knows its drain rate better than we do.
        """
        ceiling = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        delay = random.uniform(0.0, ceiling) or ceiling
        if retry_after is not None:
            try:
                delay = max(delay, float(retry_after))
            except ValueError:
                pass
        return delay

    # -- transport ---------------------------------------------------------------
    def _request_full(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], Any]:
        """One request; returns ``(status, response headers, payload)``.

        A ``304 Not Modified`` returns ``(304, headers, None)``. Error
        responses raise the typed :class:`~repro.exceptions.ApiError`
        subclass named by the envelope's ``code`` (plain
        ``ServiceError`` when the body carries no envelope) — after
        exhausting the backoff retries for 429/503.
        """
        data = None
        request_headers = {"Accept": "application/json"}
        if headers:
            request_headers.update(headers)
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            request_headers["Content-Type"] = "application/json"
        attempt = 0
        while True:
            request = urllib.request.Request(
                f"{self.url}{path}",
                data=data,
                headers=request_headers,
                method=method,
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    raw = response.read()
                    payload = (
                        json.loads(raw.decode("utf-8")) if raw else None
                    )
                    return (
                        response.status,
                        dict(response.headers),
                        payload,
                    )
            except urllib.error.HTTPError as exc:
                if exc.code == 304:
                    return 304, dict(exc.headers), None
                if (
                    exc.code in RETRYABLE_STATUSES
                    and attempt < self.retries
                ):
                    delay = self._backoff_delay(
                        attempt, exc.headers.get("Retry-After")
                    )
                    exc.close()
                    attempt += 1
                    time.sleep(delay)
                    continue
                raise self._error_from(method, path, exc) from None
            except urllib.error.URLError as exc:
                raise ServiceError(
                    f"cannot reach service at {self.url}: {exc.reason}"
                ) from None

    @staticmethod
    def _error_from(
        method: str, path: str, exc: urllib.error.HTTPError
    ) -> ServiceError:
        """The typed exception for one HTTP error response."""
        code = None
        message = ""
        detail: dict[str, Any] = {}
        try:
            envelope = json.loads(exc.read().decode("utf-8")).get("error")
            if isinstance(envelope, dict):  # v1 envelope
                code = envelope.get("code")
                message = envelope.get("message", "")
                detail = envelope.get("detail") or {}
            elif envelope:  # pre-v1 flat string
                message = str(envelope)
        except Exception:
            pass
        text = f"{method} {path} failed with HTTP {exc.code}" + (
            f": {message}" if message else ""
        )
        error_type = API_ERROR_TYPES.get(code)
        if error_type is not None:
            return error_type(text, detail=detail)
        return ServiceError(text)

    def _request(
        self,
        method: str,
        path: str,
        body: Any = None,
    ) -> Any:
        """One request through ``/v1``; returns the decoded payload."""
        return self._request_full(method, f"/v1{path}", body=body)[2]

    def _request_text(self, method: str, path: str) -> str:
        """One request through ``/v1`` returning the raw response body.

        Used for non-JSON representations (Prometheus text exposition).
        Error handling matches :meth:`_request_full`.
        """
        request = urllib.request.Request(
            f"{self.url}/v1{path}", method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise self._error_from(method, path, exc) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from None

    # -- API ---------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /v1/healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self, format: str = "json") -> dict[str, Any] | str:
        """``GET /v1/metrics``.

        ``format="json"`` (default) returns the decoded legacy payload;
        ``format="prometheus"`` returns the text exposition body as a
        string, ready for a scrape check or ``promtool``.
        """
        if format == "prometheus":
            return self._request_text("GET", "/metrics?format=prometheus")
        return self._request("GET", "/metrics")

    def trace(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/{id}/trace``: the job's span tree payload."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def submit(
        self,
        scenario: str | None = None,
        priority: int = 0,
        timeout: float | None = None,
        max_oracle_calls: int | None = None,
        shards: int | None = None,
        profile: bool = False,
        **spec_fields: Any,
    ) -> dict[str, Any]:
        """``POST /v1/jobs``: a registered scenario by name, or inline fields.

        ``timeout`` (wall-clock seconds) and ``max_oracle_calls`` are
        per-job resource limits; a job that exceeds one ends
        ``FAILED(failure_reason=timeout|quota)``. ``shards=N`` fans the
        search out across N shard jobs — the returned record is the
        coordinating parent whose result is the merged skyline.
        ``profile=True`` asks the server to run the job under cProfile
        (effective when it was started with ``--profile-dir``; the
        summary comes back via :meth:`trace`).

        >>> client.submit(scenario="smoke-t3-apx", priority=5)
        >>> client.submit(task="T3", algorithm="apx", budget=10, shards=4)
        """
        body: dict[str, Any] = dict(spec_fields)
        if scenario is not None:
            body["scenario"] = scenario
        if priority:
            body["priority"] = priority
        if timeout is not None:
            body["timeout"] = timeout
        if max_oracle_calls is not None:
            body["max_oracle_calls"] = max_oracle_calls
        if shards is not None:
            body["shards"] = shards
        if profile:
            body["profile"] = True
        return self._request("POST", "/jobs", body=body)

    def submit_batch(
        self, items: list[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        """``POST /v1/jobs`` with a list: one outcome per item, in order.

        Each entry is ``{"status": 201, "job": {...}}`` on success or
        ``{"status": 4xx, "error": {code, message, detail}}`` — a bad
        item never fails its siblings.
        """
        return self._request("POST", "/jobs", body=list(items))["jobs"]

    def jobs_page(
        self,
        state: str | None = None,
        limit: int | None = None,
        after: str | None = None,
    ) -> dict[str, Any]:
        """``GET /v1/jobs``: one page, ``{"jobs": [...], "next": cursor}``.

        ``state`` filters; ``limit`` caps the page; ``after`` resumes
        from a previously returned ``next`` cursor (a job id). ``next``
        is ``None`` once the listing is exhausted.
        """
        params = []
        if state is not None:
            params.append(f"state={state}")
        if limit is not None:
            params.append(f"limit={limit}")
        if after is not None:
            params.append(f"after={after}")
        query = "?" + "&".join(params) if params else ""
        return self._request("GET", f"/jobs{query}")

    def jobs(self, state: str | None = None) -> list[dict[str, Any]]:
        """Every job record in submission order (auto-paginating).

        Follows ``next`` cursors until the listing is exhausted; use
        :meth:`jobs_page` to drive the cursor yourself.
        """
        records: list[dict[str, Any]] = []
        after = None
        while True:
            page = self.jobs_page(state=state, after=after)
            records.extend(page["jobs"])
            after = page.get("next")
            if after is None:
                return records

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/{id}``."""
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``DELETE /v1/jobs/{id}`` (only queued jobs are cancellable)."""
        return self._request("DELETE", f"/jobs/{job_id}")

    def result(
        self, job_id: str, partial: bool = False
    ) -> dict[str, Any]:
        """``GET /v1/results/{id}``: the job record with its full result.

        ``partial=True`` asks for ``?partial=1`` instead: a DONE job
        still answers with its full result (``"partial": false``), a
        running job answers with its freshest partial skyline — estimated
        perfs from an unthinned front, in-memory only (empty right after
        a journal replay), documented telemetry rather than the exact
        final answer.
        """
        query = "?partial=1" if partial else ""
        return self._request("GET", f"/results/{job_id}{query}")

    def progress(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/{id}/progress``: live counters + heartbeat age.

        Sharded parents include a ``"shards"`` list with the same per
        child, plus rolled-up totals in ``"progress"``.
        """
        return self._request("GET", f"/jobs/{job_id}/progress")

    def events(
        self,
        after: int = 0,
        timeout: float = 0.0,
        limit: int | None = None,
        job: str | None = None,
    ) -> dict[str, Any]:
        """``GET /v1/events``: events past the ``after`` cursor.

        Returns ``{"events", "next_cursor", "dropped", "last_seq"}``;
        pass ``next_cursor`` back to receive each later event exactly
        once (``dropped`` > 0 reports events that aged out of the
        server's ring before this read). ``timeout`` long-polls
        server-side; ``job`` filters to one job and its shard children.
        """
        params = [f"after={int(after)}"]
        if timeout:
            params.append(f"timeout={float(timeout):g}")
        if limit is not None:
            params.append(f"limit={int(limit)}")
        if job is not None:
            params.append(f"job={job}")
        return self._request("GET", "/events?" + "&".join(params))

    def watch(
        self,
        job_id: str,
        after: int = 0,
        timeout: float | None = None,
        poll_timeout: float = 10.0,
    ) -> Iterator[dict[str, Any]]:
        """Iterate a job's events (shard children included) to terminal.

        Yields raw event dicts in sequence order, long-polling between
        batches, and returns after yielding the job's own terminal event
        (``job.done`` / ``job.failed`` / ``job.cancelled``) — or when
        ``timeout`` seconds pass without one.
        """
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        cursor = int(after)
        while True:
            poll = poll_timeout
            if deadline is not None:
                poll = min(poll, max(0.0, deadline - time.monotonic()))
            batch = self.events(after=cursor, timeout=poll, job=job_id)
            cursor = batch["next_cursor"]
            for event in batch["events"]:
                yield event
                if (
                    event.get("type") in TERMINAL_EVENT_TYPES
                    and event.get("job_id") == job_id
                ):
                    return
            if deadline is not None and time.monotonic() >= deadline:
                return

    # -- conveniences ------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.25,
        timing: bool = True,
    ) -> dict[str, Any]:
        """Block until the job is terminal; returns its final record.

        Rides the server's event stream: between record checks the
        client long-polls ``GET /v1/events?job=...`` and wakes on the
        job's next event instead of sleeping a fixed interval. Servers
        without the events route (404 ``unknown-route``) degrade to the
        previous behavior — conditional ``ETag`` polling every
        ``poll_interval`` seconds, where unchanged polls cost a ``304``
        with no body.

        With ``timing`` (default), the terminal record carries a
        ``"timing"`` key split out from the job's trace — how long the
        job sat queued vs. actually ran::

            {"queue_wait_seconds": 0.01, "run_seconds": 3.2}
        """
        deadline = time.monotonic() + timeout
        record: dict[str, Any] | None = None
        etag: str | None = None
        cursor = 0
        use_events = True
        while True:
            headers = {"If-None-Match": etag} if etag else None
            status, response_headers, payload = self._request_full(
                "GET", f"/v1/jobs/{job_id}", headers=headers
            )
            if status != 304:
                record = payload
                etag = response_headers.get("ETag")
            if record is not None and record["state"] in JobState.TERMINAL:
                if timing:
                    try:
                        trace = self.trace(job_id)
                        record["timing"] = {
                            "queue_wait_seconds": trace.get(
                                "queue_wait_seconds"
                            ),
                            "run_seconds": trace.get("run_seconds"),
                        }
                    except ServiceError:
                        pass  # pre-trace server; the record is still good
                return record
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                state = record["state"] if record else "unknown"
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for job "
                    f"{job_id} (still {state})"
                )
            if use_events:
                try:
                    # Wake on the job's next event. The poll is kept
                    # under the transport timeout; an empty batch (or a
                    # dropped-events gap) just re-checks the record.
                    batch = self.events(
                        after=cursor,
                        timeout=min(10.0, max(0.1, remaining)),
                        job=job_id,
                    )
                    cursor = batch["next_cursor"]
                    continue
                except UnknownRouteError:
                    use_events = False  # pre-events server: poll instead
                except ServiceError:
                    # Transient stream failure (e.g. proxy timeout):
                    # fall through to one interval sleep, keep streaming.
                    pass
            time.sleep(
                min(poll_interval, max(0.0, deadline - time.monotonic()))
            )

    def run(
        self,
        scenario: str | None = None,
        priority: int = 0,
        timeout: float = 300.0,
        job_timeout: float | None = None,
        max_oracle_calls: int | None = None,
        shards: int | None = None,
        profile: bool = False,
        **spec_fields: Any,
    ) -> dict[str, Any]:
        """Submit and wait; raises if the job did not end ``DONE``.

        ``timeout`` bounds this client's *wait* (the job keeps running
        server-side when it expires); ``job_timeout`` and
        ``max_oracle_calls`` are the server-enforced per-job limits,
        forwarded to :meth:`submit` along with ``shards`` and
        ``profile``.
        """
        job = self.submit(
            scenario=scenario,
            priority=priority,
            timeout=job_timeout,
            max_oracle_calls=max_oracle_calls,
            shards=shards,
            profile=profile,
            **spec_fields,
        )
        record = self.wait(job["id"], timeout=timeout)
        if record["state"] != JobState.DONE:
            raise ServiceError(
                f"job {record['id']} ended {record['state']}"
                + (f": {record['error']}" if record.get("error") else "")
            )
        return record

    def __repr__(self) -> str:
        return f"ServiceClient({self.url!r})"
