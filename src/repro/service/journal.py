"""Durable write-ahead journal for the job scheduler: crash recovery.

PR 3's scheduler kept every job record in memory, so a crash threw away
exactly the queued/running work the oracle store was built to preserve.
This module is the missing durability layer: an append-only JSONL
journal that records every job transition *before* the scheduler acts on
it, and a replay that folds those records back into per-job snapshots on
startup. The scheduler re-queues whatever was ``QUEUED`` or ``RUNNING``
at crash time (charging a retry for interrupted runs) and restores
terminal records so ``GET /jobs`` still answers for work finished before
the crash.

Layout: ``<dir>/journal-000001.jsonl``, ``journal-000002.jsonl``, … —
segments in strictly increasing index order. Appends go to the
highest-index segment; once it exceeds ``max_segment_bytes`` a fresh
segment is started. :meth:`JobJournal.compact` rewrites the whole
journal as one snapshot line per known job into a *new* segment (atomic
temp-file + rename, directory fsync'd), then deletes the older segments
— a crash anywhere in compaction leaves a journal that replays to the
same state, because snapshot records replace a job's state wholesale and
the compacted segment sorts after everything it supersedes.

Record grammar (one JSON object per line)::

    {"v": 1, "ts": <epoch>, "type": "submitted", "job": {<snapshot>}}
    {"v": 1, "ts": <epoch>, "type": "started",   "id": "job-..."}
    {"v": 1, "ts": <epoch>, "type": "retried",   "id": "...", "retries": n}
    {"v": 1, "ts": <epoch>, "type": "done" | "failed" | "cancelled",
     "id": "...", "job": {<snapshot>}}
    {"v": 1, "ts": <epoch>, "type": "snapshot",  "job": {<snapshot>}}
    {"v": 1, "ts": <epoch>, "type": "lease-acquired" | "lease-renewed",
     "id": "...", "owner": "sched-...", "ttl": <seconds>}
    {"v": 1, "ts": <epoch>, "type": "lease-released", "id": "...",
     "owner": "sched-..."}

Lease records are the multi-scheduler coordination layer: every
scheduler sharing a journal directory claims each job it works on by
appending ``lease-acquired`` (and keeps it alive with periodic
``lease-renewed`` records). Replay folds the latest lease onto the job's
snapshot as ``lease_owner`` / ``lease_expires_at = ts + ttl`` — expiry
itself is *evaluated by the reader* against its clock, so a SIGKILLed
scheduler needs no cleanup: its leases simply stop being renewed and
peers adopt the jobs once ``lease_expires_at`` passes. Lease records are
additive (old readers count them as skipped lines), so they do not bump
:data:`JOURNAL_VERSION`.

where ``<snapshot>`` is :meth:`~repro.service.jobs.Job.to_snapshot` —
the full lifecycle record plus the spec fields needed to reconstruct the
:class:`~repro.scenarios.spec.Scenario`.

Format versioning rules (readers and writers MUST follow these):

* Every line carries ``"v"``. Readers skip lines whose ``v`` is missing,
  non-integer, or **greater** than :data:`JOURNAL_VERSION` — a journal
  written by a newer release degrades to partial replay, never to a
  crash.
* *Additive* changes (new record fields, new optional snapshot keys) do
  **not** bump the version; replay must treat unknown fields as inert
  and missing fields as their documented defaults.
* *Semantic* changes (renamed types, changed state meanings, removed
  fields that replay depends on) bump :data:`JOURNAL_VERSION`.
* Compaction always rewrites records at the current version, so a
  journal's version mix only ever spans releases since its last
  compaction.
* A torn final line (crash mid-append) is not corruption: the record
  never committed, so replay drops it silently. Torn or foreign lines
  anywhere *else* are counted in :attr:`ReplaySummary.skipped` and
  logged, and replay continues.

Cross-process coordination: every journal instance holds a shared
``flock`` on ``<dir>/.journal.lock`` for the duration of each append and
an exclusive one for the duration of a compaction. Appends from many
processes coexist (shared mode), but a compaction excludes appenders and
other compactors — so exactly one lease-holding scheduler folds a shared
directory at a time, and an append can never land in a segment between
the compactor's snapshot and its unlink of the old segments.
:meth:`JobJournal.maybe_compact` acquires the exclusive lock
*non-blocking* and simply skips the fold when a peer holds it. On
platforms without ``fcntl`` the lock is a no-op and
:attr:`JobJournal.supports_cross_process_lock` is False — callers in
shared-journal mode must then refuse to compact (the scheduler does).
"""

from __future__ import annotations

import os
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterable, Iterator

try:  # POSIX only; the lock degrades gracefully elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from ..exceptions import ServiceError
from ..ioutil import append_jsonl, fsync_directory, read_jsonl
from ..logging_util import get_logger
from .jobs import Job, JobState

logger = get_logger("service.journal")

#: Bump only on semantic format changes — see the module docstring.
JOURNAL_VERSION = 1

#: Roll to a fresh segment once the current one crosses this size.
DEFAULT_MAX_SEGMENT_BYTES = 4 << 20

#: ``maybe_compact`` folds the journal once it spans more segments.
DEFAULT_MAX_SEGMENTS = 4

#: Compaction keeps at most this many terminal snapshots (newest first).
#: Live (queued/running) jobs are always kept; without a cap the journal,
#: boot replay, and every compaction would grow with the service's whole
#: lifetime history. Old results remain available via the ResultCache.
DEFAULT_MAX_TERMINAL_SNAPSHOTS = 1000

#: 6+ digits: indices grow monotonically for the life of a directory and
#: must stay visible past 999999 (name padding does not truncate).
_SEGMENT_RE = re.compile(r"^journal-(\d{6,})\.jsonl$")

#: Record types whose payload is a full job snapshot.
_SNAPSHOT_TYPES = frozenset({"submitted", "snapshot", *JobState.TERMINAL})


def _segment_name(index: int) -> str:
    return f"journal-{index:06d}.jsonl"


@dataclass
class ReplaySummary:
    """What a journal folds down to: one snapshot per job, plus stats."""

    #: job id → latest snapshot dict, in first-submission order.
    jobs: dict[str, dict[str, Any]] = field(default_factory=dict)
    records: int = 0
    segments: int = 0
    #: undecodable or foreign (newer-version) lines that were skipped.
    skipped: int = 0
    #: a torn final line was dropped (crash mid-append).
    torn_tail: bool = False
    #: transition records whose job id had no submitted/snapshot record.
    orphaned: int = 0
    #: parsed records from a NEWER format version: replay cannot fold
    #: them, but compaction must carry them forward verbatim so a later
    #: release (post-rollback re-upgrade) can still recover them.
    foreign: list[dict[str, Any]] = field(default_factory=list)

    def by_state(self) -> dict[str, int]:
        """How many replayed jobs sit in each state."""
        counts = {state: 0 for state in JobState.ALL}
        for snapshot in self.jobs.values():
            state = snapshot.get("state")
            if state in counts:
                counts[state] += 1
        return counts


class JobJournal:
    """Append-only, crash-safe, segment-rotated journal of job records.

    Thread-safe: the scheduler appends from many worker threads. Opening
    is lazy — constructing a journal (or calling :meth:`replay`) never
    creates or mutates files, so ``repro recover --dry-run`` can inspect
    a journal directory truly offline.
    """

    def __init__(
        self,
        directory: str | Path,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
        max_terminal_snapshots: int | None = DEFAULT_MAX_TERMINAL_SNAPSHOTS,
        fsync: bool = True,
    ):
        self.directory = Path(directory)
        self.max_segment_bytes = int(max_segment_bytes)
        self.max_segments = int(max_segments)
        self.max_terminal_snapshots = (
            None if max_terminal_snapshots is None
            else int(max_terminal_snapshots)
        )
        self.fsync = bool(fsync)
        if self.max_segment_bytes < 1:
            raise ServiceError("max_segment_bytes must be >= 1")
        if self.max_segments < 1:
            raise ServiceError("max_segments must be >= 1")
        self._lock = threading.Lock()
        self._fh: IO[str] | None = None
        self._fh_path: Path | None = None
        self._lock_fh: IO[str] | None = None
        #: epoch of the last committed append (None before the first);
        #: ``/v1/healthz`` reports ``now - last_append_at`` as append lag.
        self.last_append_at: float | None = None

    # -- cross-process lock ------------------------------------------------------
    @property
    def supports_cross_process_lock(self) -> bool:
        """Whether appends/compactions are ordered across processes."""
        return fcntl is not None

    def _lock_file(self) -> IO[str]:
        """The (lazily opened) handle flock operates on.

        ``flock`` locks belong to the open file description, so two
        journal instances — even in one process — hold independent,
        mutually conflicting locks, which is exactly what the two-writer
        tests exercise.
        """
        if self._lock_fh is None or self._lock_fh.closed:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._lock_fh = (self.directory / ".journal.lock").open("a")
        return self._lock_fh

    @contextmanager
    def _dir_lock(
        self, exclusive: bool, blocking: bool = True
    ) -> Iterator[bool]:
        """Hold the directory lock; yields False iff a non-blocking
        acquisition lost the race. No-op (yields True) without fcntl —
        callers needing true mutual exclusion must check
        :attr:`supports_cross_process_lock` first.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield True
            return
        fh = self._lock_file()
        flags = fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
        if not blocking:
            flags |= fcntl.LOCK_NB
        try:
            fcntl.flock(fh.fileno(), flags)
        except OSError:
            yield False
            return
        try:
            yield True
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # -- segment bookkeeping -----------------------------------------------------
    def segments(self) -> list[Path]:
        """Existing segment files, oldest first."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in self.directory.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return [path for _, path in sorted(found)]

    def _next_index(self) -> int:
        existing = self.segments()
        if not existing:
            return 1
        return int(_SEGMENT_RE.match(existing[-1].name).group(1)) + 1

    def _ensure_open(self) -> IO[str]:
        """The append handle on the newest segment (lock held)."""
        if self._fh is not None and not self._fh.closed:
            try:
                size = self._fh_path.stat().st_size
            except FileNotFoundError:
                # The segment vanished under us: a peer's compaction (its
                # exclusive directory lock ordered it before this append,
                # and its snapshot folded everything we ever wrote) or an
                # operator's rm. Appends to the orphaned inode would be
                # silently lost, so reopen on a live segment. Benign and
                # lossless in the compaction case, hence INFO.
                logger.info(
                    "journal segment %s was removed (external compaction "
                    "or cleanup); reopening on the live segment",
                    self._fh_path,
                )
                self._close_handle()
                return self._ensure_open()
            if size < self.max_segment_bytes:
                return self._fh
            self._close_handle()
            path = self.directory / _segment_name(self._next_index())
        else:
            self.directory.mkdir(parents=True, exist_ok=True)
            existing = self.segments()
            path = (
                existing[-1]
                if existing
                and existing[-1].stat().st_size < self.max_segment_bytes
                else self.directory / _segment_name(self._next_index())
            )
        created = not path.exists()
        self._fh = path.open("a", encoding="utf-8")
        self._fh_path = path
        if created and self.fsync:
            fsync_directory(self.directory)
        if not created and not self._ends_with_newline(path):
            # The segment ends in a torn line (crash mid-append). An
            # append straight after it would fuse with the partial text
            # into one undecodable line, losing BOTH records on the next
            # replay. Terminate the torn line first: it becomes ordinary
            # skipped garbage, and new records stay intact.
            self._fh.write("\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
        return self._fh

    def _close_handle(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - close on a dead handle
                pass
        self._fh = None
        self._fh_path = None

    def close(self) -> None:
        """Release the append handle (the journal can be reopened)."""
        with self._lock:
            self._close_handle()
            if self._lock_fh is not None:
                try:
                    self._lock_fh.close()
                except OSError:  # pragma: no cover - close on dead handle
                    pass
                self._lock_fh = None

    def __enter__(self) -> JobJournal:
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- appends -----------------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        record = {"v": JOURNAL_VERSION, "ts": time.time(), **record}
        with self._lock:
            # Shared directory lock: peers may append concurrently, but a
            # compactor (exclusive) is excluded, so the stat-then-write in
            # `_ensure_open` cannot race a segment unlink and lose the
            # record to an orphaned inode.
            with self._dir_lock(exclusive=False):
                append_jsonl(self._ensure_open(), record, fsync=self.fsync)
            self.last_append_at = time.time()

    def record_submitted(self, job: Job) -> None:
        """WAL a new submission — call *before* the job enters the queue."""
        self._append({"type": "submitted", "job": job.to_snapshot()})

    def record_started(self, job: Job) -> None:
        """A worker picked the job up; replay treats it as interrupted."""
        self._append({"type": "started", "id": job.id})

    def record_retried(self, job: Job) -> None:
        """A crash-interrupted run was re-queued; ``retries`` is durable."""
        self._append(
            {"type": "retried", "id": job.id, "retries": job.retries}
        )

    def record_lease(
        self,
        job_id: str,
        action: str,
        owner: str,
        ttl: float | None = None,
    ) -> None:
        """WAL one lease event (``acquired`` | ``renewed`` | ``released``).

        ``ttl`` (seconds, required for acquire/renew) sets the adoption
        horizon: replay computes ``lease_expires_at = ts + ttl``, after
        which any peer scheduler may claim the job for itself.
        """
        if action not in ("acquired", "renewed", "released"):
            raise ServiceError(f"unknown lease action {action!r}")
        record: dict[str, Any] = {
            "type": f"lease-{action}", "id": job_id, "owner": owner,
        }
        if action != "released":
            if ttl is None or ttl <= 0:
                raise ServiceError(
                    f"lease-{action} needs a positive ttl, got {ttl!r}"
                )
            record["ttl"] = float(ttl)
        self._append(record)

    def record_terminal(self, job: Job) -> None:
        """The full final record — results survive restarts through this."""
        if job.state not in JobState.TERMINAL:
            raise ServiceError(
                f"job {job.id} is {job.state}; only terminal states are "
                "journaled as terminal records"
            )
        self._append(
            {"type": job.state, "id": job.id, "job": job.to_snapshot()}
        )

    # -- replay ------------------------------------------------------------------
    def replay(self) -> ReplaySummary:
        """Fold every segment into per-job snapshots (read-only).

        Tolerant by construction: a torn final line is dropped silently,
        any other unparseable or newer-version line is skipped (counted),
        and transition records for unknown job ids are counted as
        orphans. Replay never raises on journal *content* — a recovering
        service must come up on whatever survives.
        """
        summary = ReplaySummary()
        segments = self.segments()
        summary.segments = len(segments)
        for position, segment in enumerate(segments):
            last = position == len(segments) - 1
            for document, ok in read_jsonl(
                segment, tolerate_torn_tail=last
            ):
                if not ok:
                    summary.skipped += 1
                    logger.warning(
                        "journal %s: skipping undecodable line", segment.name
                    )
                    continue
                if not self._readable(document):
                    summary.skipped += 1
                    if (
                        isinstance(document, dict)
                        and isinstance(document.get("v"), int)
                        and document["v"] > JOURNAL_VERSION
                    ):
                        summary.foreign.append(document)
                    continue
                summary.records += 1
                self._fold(summary, document)
        # read_jsonl drops the torn line itself; detect it for the stats.
        if segments and not self._ends_with_newline(segments[-1]):
            summary.torn_tail = True
        return summary

    @staticmethod
    def _readable(document: Any) -> bool:
        if not isinstance(document, dict):
            return False
        version = document.get("v")
        return isinstance(version, int) and version <= JOURNAL_VERSION

    @staticmethod
    def _fold(summary: ReplaySummary, record: dict[str, Any]) -> None:
        kind = record.get("type")
        if kind in _SNAPSHOT_TYPES:
            snapshot = record.get("job")
            if not isinstance(snapshot, dict) or "id" not in snapshot:
                summary.skipped += 1
                return
            summary.jobs[snapshot["id"]] = snapshot
            return
        job_id = record.get("id")
        snapshot = summary.jobs.get(job_id)
        if snapshot is None:
            summary.orphaned += 1
            return
        if kind == "started":
            snapshot["state"] = JobState.RUNNING
            snapshot["started_at"] = record.get("ts")
        elif kind == "retried":
            retries = record.get("retries")
            if isinstance(retries, int):
                snapshot["retries"] = max(
                    retries, snapshot.get("retries", 0) or 0
                )
            snapshot["state"] = JobState.QUEUED
            snapshot["started_at"] = None
            snapshot["lease_owner"] = None
            snapshot["lease_expires_at"] = None
        elif kind in ("lease-acquired", "lease-renewed"):
            snapshot["lease_owner"] = record.get("owner")
            ts, ttl = record.get("ts"), record.get("ttl")
            snapshot["lease_expires_at"] = (
                float(ts) + float(ttl)
                if isinstance(ts, (int, float))
                and isinstance(ttl, (int, float))
                else None
            )
        elif kind == "lease-released":
            snapshot["lease_owner"] = None
            snapshot["lease_expires_at"] = None
        else:
            summary.skipped += 1

    @staticmethod
    def _ends_with_newline(path: Path) -> bool:
        try:
            with path.open("rb") as fh:
                fh.seek(0, 2)
                if fh.tell() == 0:
                    return True
                fh.seek(-1, 2)
                return fh.read(1) == b"\n"
        except OSError:  # pragma: no cover - raced deletion
            return True

    # -- compaction --------------------------------------------------------------
    def compact(
        self, jobs: Iterable[Job] | None = None, blocking: bool = True
    ) -> int:
        """Rewrite the journal as one snapshot line per job.

        ``jobs`` (when given — the scheduler's authoritative in-memory
        records) wins over a fresh replay, so retry accounting applied
        during recovery becomes durable immediately; pass ``None`` on a
        *shared* directory so the replay-based fold preserves peer
        schedulers' records. Returns the number of snapshot records
        written, or ``-1`` when ``blocking=False`` and a peer process
        holds the directory lock (exactly one compactor wins; the losers
        skip). Crash-safe: the compacted segment is written to a temp
        name, fsync'd, renamed into place (with a directory fsync), and
        only then are the superseded segments removed.
        """
        with self._lock, self._dir_lock(
            exclusive=True, blocking=blocking
        ) as held:
            if not held:
                logger.info(
                    "journal compaction skipped: another process holds "
                    "the directory lock"
                )
                return -1
            summary = self.replay()
            if jobs is not None:
                snapshots = [job.to_snapshot() for job in jobs]
            else:
                snapshots = list(summary.jobs.values())
            snapshots = self._retained(snapshots)
            # Newer-version lines this release cannot fold are carried
            # forward verbatim — compaction must never be the event that
            # destroys records a future (re-upgraded) release could read.
            foreign = summary.foreign
            old_segments = self.segments()
            self._close_handle()
            self.directory.mkdir(parents=True, exist_ok=True)
            target = self.directory / _segment_name(self._next_index())
            tmp = target.with_suffix(".jsonl.compacting")
            try:
                with tmp.open("w", encoding="utf-8") as fh:
                    for snapshot in snapshots:
                        append_jsonl(
                            fh,
                            {
                                "v": JOURNAL_VERSION,
                                "ts": time.time(),
                                "type": "snapshot",
                                "job": snapshot,
                            },
                            fsync=False,
                        )
                    for record in foreign:
                        append_jsonl(fh, record, fsync=False)
                    fh.flush()
                    if self.fsync:
                        os.fsync(fh.fileno())
                tmp.replace(target)
            finally:
                tmp.unlink(missing_ok=True)
            if self.fsync:
                fsync_directory(self.directory)
            for segment in old_segments:
                segment.unlink(missing_ok=True)
            if self.fsync:
                fsync_directory(self.directory)
            return len(snapshots)

    def _retained(self, snapshots: list[dict]) -> list[dict]:
        """Apply the terminal-retention cap (keep newest, keep all live).

        Bounds the whole durability pipeline on a long-lived service:
        journal bytes, compaction cost, and boot-replay time all scale
        with the retained set, not with lifetime traffic.
        """
        cap = self.max_terminal_snapshots
        if cap is None:
            return snapshots
        terminal = [
            s for s in snapshots if s.get("state") in JobState.TERMINAL
        ]
        overflow = len(terminal) - cap
        if overflow <= 0:
            return snapshots
        dropped = {id(s) for s in terminal[:overflow]}  # oldest first
        logger.info(
            "compaction dropping %d oldest terminal snapshot(s) "
            "(retention cap %d)", overflow, cap,
        )
        return [s for s in snapshots if id(s) not in dropped]

    def maybe_compact(self, jobs: Iterable[Job] | None = None) -> bool:
        """Compact iff the journal has grown past ``max_segments``.

        Non-blocking on the cross-process lock: when a peer is already
        folding the directory this returns False instead of queueing a
        redundant second compaction behind it.
        """
        if len(self.segments()) <= self.max_segments:
            return False
        return self.compact(jobs, blocking=False) >= 0

    # -- introspection -----------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Directory, segment count, and total bytes (for ``/metrics``)."""
        segments = self.segments()
        total = 0
        for path in segments:
            try:
                total += path.stat().st_size
            except OSError:  # raced a concurrent compaction's unlink
                pass
        return {
            "directory": str(self.directory),
            "segments": len(segments),
            "total_bytes": total,
            "last_append_at": self.last_append_at,
        }

    def __repr__(self) -> str:
        return (
            f"JobJournal({str(self.directory)!r}, "
            f"{len(self.segments())} segment(s))"
        )
