"""The JSON HTTP API over a :class:`~repro.service.scheduler.Scheduler`.

Pure stdlib (``http.server``) — the service adds no third-party
dependencies. A ``ThreadingHTTPServer`` keeps request handling off the
worker pool, so ``GET /metrics`` answers while jobs are running.

Routes::

    POST   /jobs            submit ({"scenario": name} or inline fields,
                            optional "priority"); 201 + job record
    GET    /jobs            all jobs, submission order
    GET    /jobs/{id}       one job record
    DELETE /jobs/{id}       cancel a queued job (409 when not cancellable)
    GET    /results/{id}    the full result payload of a DONE job
    GET    /healthz         liveness + version
    GET    /metrics         queue depth, jobs by state, cache hit rate,
                            oracle calls saved by warm-starts

Errors are JSON too: ``{"error": "..."}`` with a 4xx/5xx status.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .. import __version__
from ..exceptions import ReproError, ServiceError
from ..logging_util import get_logger
from .jobs import JobState
from .scheduler import Scheduler

logger = get_logger("service.server")

#: Submissions larger than this are rejected outright (sanity bound).
MAX_BODY_BYTES = 1 << 20

_JOB_ROUTE = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)$")
_RESULT_ROUTE = re.compile(r"^/results/([A-Za-z0-9_.-]+)$")


class _Handler(BaseHTTPRequestHandler):
    """Dispatches requests onto the server's scheduler."""

    server_version = f"repro-service/{__version__}"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------
    @property
    def scheduler(self) -> Scheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Set when we refuse to read a request body: the unread bytes
            # would desynchronize a kept-alive HTTP/1.1 stream.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # Reject without reading — and drop the connection, since the
            # unread body bytes would be parsed as the next request line.
            self.close_connection = True
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("empty request body; expected a JSON object")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        return body

    def _guarded(self, handler) -> None:
        """Run a route handler, mapping errors to JSON responses."""
        try:
            handler()
        except ServiceError as exc:
            self._send_error_json(400, str(exc))
        except ReproError as exc:
            # Unresolvable scenario, unknown task/algorithm, bad kwargs.
            self._send_error_json(400, str(exc))
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - last-resort 500
            logger.exception("unhandled error serving %s", self.path)
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")

    # -- verbs -------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._guarded(self._get)

    def do_POST(self) -> None:  # noqa: N802
        self._guarded(self._post)

    def do_DELETE(self) -> None:  # noqa: N802
        self._guarded(self._delete)

    # -- routes ------------------------------------------------------------------
    def _get(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "version": __version__,
                    "uptime_seconds": (
                        time.time()
                        - self.server.started_at  # type: ignore[attr-defined]
                    ),
                    "journal": self.scheduler.journal is not None,
                },
            )
            return
        if path == "/metrics":
            self._send_json(200, self.scheduler.metrics())
            return
        if path == "/jobs":
            self._send_json(
                200,
                {
                    "jobs": [
                        job.to_payload()
                        for job in self.scheduler.list_jobs()
                    ]
                },
            )
            return
        match = _JOB_ROUTE.match(path)
        if match:
            try:
                job = self.scheduler.get(match.group(1))
            except ServiceError as exc:
                self._send_error_json(404, str(exc))
                return
            self._send_json(200, job.to_payload())
            return
        match = _RESULT_ROUTE.match(path)
        if match:
            try:
                job = self.scheduler.get(match.group(1))
            except ServiceError as exc:
                self._send_error_json(404, str(exc))
                return
            if job.state != JobState.DONE or job.result is None:
                self._send_error_json(
                    409,
                    f"job {job.id} is {job.state}; results exist only "
                    "for done jobs",
                )
                return
            self._send_json(200, job.to_payload(include_result=True))
            return
        self._send_error_json(404, f"no route for GET {path}")

    def _post(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/jobs":
            self._send_error_json(404, f"no route for POST {path}")
            return
        body = self._read_body()
        job = self.scheduler.submit_request(body)
        self._send_json(201, job.to_payload())

    def _delete(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        match = _JOB_ROUTE.match(path)
        if not match:
            self._send_error_json(404, f"no route for DELETE {path}")
            return
        job_id = match.group(1)
        try:
            job = self.scheduler.cancel(job_id)
        except ServiceError as exc:
            message = str(exc)
            status = 404 if "unknown job id" in message else 409
            self._send_error_json(status, message)
            return
        self._send_json(200, job.to_payload())


class ServiceServer:
    """A scheduler bound to a listening HTTP socket.

    ``port=0`` asks the OS for a free port (tests); :attr:`url` reports
    the resolved address either way. :meth:`start` serves from a
    background thread, :meth:`serve_forever` blocks (the CLI path); both
    are shut down by :meth:`stop`, which also stops the scheduler.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        host: str = "127.0.0.1",
        port: int = 8765,
    ):
        self.scheduler = scheduler
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.scheduler = scheduler  # type: ignore[attr-defined]
        self._http.started_at = time.time()  # type: ignore[attr-defined]
        self._http.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve requests from a daemon thread (idempotent)."""
        if self._thread is not None:
            return
        self.scheduler.start()
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI mode)."""
        self.scheduler.start()
        self._http.serve_forever()

    def stop(self, drain: bool = False) -> None:
        """Stop accepting requests, then stop the worker pool."""
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.scheduler.stop(drain=drain)

    def __enter__(self) -> ServiceServer:
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"ServiceServer({self.url}, {self.scheduler!r})"
