"""The JSON HTTP API over a :class:`~repro.service.scheduler.Scheduler`.

Pure stdlib (``http.server``) — the service adds no third-party
dependencies. A bounded worker pool
(:class:`~repro.service.pool.PooledHTTPServer`) keeps request handling
off the scheduler's workers, so ``GET /v1/metrics`` answers while jobs
are running.

Routes (v1)::

    POST   /v1/jobs          submit ({"scenario": name} or inline fields,
                             optional "priority"/"shards"/limits); 201 +
                             job record. A JSON *list* submits a batch:
                             207 + {"jobs": [{"status", "job"|"error"}]}
                             with one entry per item, in order.
    GET    /v1/jobs          jobs in submission order; ``?state=`` filters,
                             ``?limit=`` caps, ``?after=<job id>`` resumes
                             a page — the response's ``next`` cursor is the
                             last returned id (null when exhausted).
    GET    /v1/jobs/{id}     one job record (sharded parents include
                             ``shard_jobs``). Carries a weak ``ETag``;
                             ``If-None-Match`` answers ``304 Not Modified``
                             with an empty body when the job is unchanged.
    DELETE /v1/jobs/{id}     cancel a queued job (cascades to a sharded
                             parent's queued children)
    GET    /v1/results/{id}  the full result payload of a DONE job
    GET    /v1/jobs/{id}/trace  the job's span tree (queue-wait, run,
                             per-phase search spans; sharded parents
                             include each child's trace) plus any
                             cProfile summary
    GET    /v1/jobs/{id}/progress  live counters + heartbeat age for a
                             running job (sharded parents roll their
                             children up)
    GET    /v1/results/{id}?partial=1  the freshest partial skyline of a
                             job still running (full result once DONE)
    GET    /v1/events        cursor-based event feed; ``?after=<seq>``
                             resumes, ``?timeout=<s>`` long-polls,
                             ``?job=<id>`` filters to one job (and its
                             shard children), ``?limit=`` caps the batch
    GET    /v1/healthz       liveness vs. readiness: queue depth, worker
                             saturation, journal append lag, per-running-
                             job heartbeat age, event-bus state
    GET    /v1/metrics       queue depth, jobs by state, cache hit rate,
                             shards in flight, leases held/adopted;
                             ``?format=prometheus`` renders the same
                             registry as Prometheus text exposition

The original unversioned paths (``/jobs``, ``/results/{id}``,
``/healthz``, ``/metrics``) remain as deprecated aliases: same handlers,
same payloads, plus a ``Deprecation: true`` response header.

Every 4xx/5xx body is the error envelope::

    {"error": {"code": "...", "message": "...", "detail": {...}}}

with ``code`` one of (see :mod:`repro.exceptions`):

==================  ======  ====================================================
code                status  raised when
==================  ======  ====================================================
invalid-request     400     malformed body/query: not JSON, unknown or
                            ill-typed fields, bad limits, bad pagination
invalid-scenario    400     the spec does not resolve (unknown scenario,
                            task, algorithm, or illegal field combination)
payload-too-large   400     declared request body exceeds MAX_BODY_BYTES
unknown-job         404     the job id is not known to the scheduler
unknown-route       404     no route matches the method + path
not-cancellable     409     DELETE on a job that is not queued, or on a
                            shard child (cancel the parent instead)
result-not-ready    409     GET /v1/results/{id} before the job is DONE
overloaded          429     admission control refused a submission: the
                            scheduler's job queue is at the configured
                            depth. Carries a ``Retry-After`` header (and
                            the same hint in ``detail.retry_after``);
                            batch submissions report it per item inside
                            the 207 body. The serving core answers the
                            same envelope raw when the pending-connection
                            queue or connection cap overflows
                            (see :mod:`repro.service.pool`).
internal            500     unhandled server-side failure
==================  ======  ====================================================

Serving model (since the bounded-concurrency rework): requests are
handled by a fixed pool of ``PoolConfig.http_workers`` threads behind a
bounded pending queue — never a thread per connection. HTTP/1.1
keep-alive is fully supported: every response (error envelopes and 304s
included) carries an exact ``Content-Length``, unread request bodies are
drained before the next request is parsed, and idle connections park in
a selector instead of pinning a worker. Long-polls
(``GET /v1/events?timeout=``) occupy at most
``PoolConfig.longpoll_slots`` workers; beyond that they answer
immediately (``timeout=0`` semantics) so they can never exhaust the
pool.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler
from typing import Any
from urllib.parse import parse_qsl

from .. import __version__
from ..exceptions import (
    ApiError,
    InvalidRequestError,
    PayloadTooLargeError,
    ReproError,
    ResultNotReadyError,
    ScenarioError,
    ServiceError,
    ServiceOverloadedError,
    UnknownRouteError,
)
from ..logging_util import get_logger
from .jobs import JobState
from .pool import PoolConfig, PooledHTTPServer
from .scheduler import Scheduler

logger = get_logger("service.server")

#: Submissions larger than this are rejected outright (sanity bound).
MAX_BODY_BYTES = 1 << 20

#: Jobs returned by an unbounded ``GET /v1/jobs`` page.
MAX_PAGE_SIZE = 1000

_JOB_ROUTE = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)$")
_TRACE_ROUTE = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)/trace$")
_PROGRESS_ROUTE = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)/progress$")
_RESULT_ROUTE = re.compile(r"^/results/([A-Za-z0-9_.-]+)$")

_LIST_PARAMS = frozenset({"state", "limit", "after"})
_EVENTS_PARAMS = frozenset({"after", "timeout", "limit", "job"})

#: Long-poll waits on ``GET /v1/events`` are clamped to this many seconds
#: so a handler thread can never be parked indefinitely.
MAX_EVENT_POLL_SECONDS = 30.0

#: Events returned by one ``GET /v1/events`` batch.
MAX_EVENT_BATCH = 512

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def job_etag(payload: dict[str, Any]) -> str:
    """A weak validator for one job record.

    Derived from everything a poller can observe changing — state,
    ``updated_at``, and (for sharded parents) each child's state — so a
    ``304`` is guaranteed to mean "nothing you can see moved". Weak
    (``W/``) because two byte-different renderings of the same lifecycle
    point share a tag.
    """
    token = json.dumps(
        [
            payload.get("state"),
            payload.get("updated_at"),
            [
                (c.get("id"), c.get("state"))
                for c in payload.get("shard_jobs", [])
            ],
        ],
        separators=(",", ":"),
    )
    return 'W/"' + hashlib.sha1(token.encode("utf-8")).hexdigest()[:20] + '"'


class _Handler(BaseHTTPRequestHandler):
    """Dispatches requests onto the server's scheduler."""

    server_version = f"repro-service/{__version__}"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------
    @property
    def scheduler(self) -> Scheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _split_route(self) -> tuple[str, str]:
        """Normalize the request path to its unversioned route + query.

        ``/v1/...`` is the current API; bare paths are the deprecated
        aliases and mark the response (``Deprecation: true``).
        """
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        if path == "/v1" or path.startswith("/v1/"):
            self._deprecated = False
            path = path[len("/v1"):] or "/"
        else:
            self._deprecated = True
        return path, query

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if getattr(self, "_deprecated", False):
            self.send_header("Deprecation", "true")
        if self.close_connection:
            # Set when we refuse to read a request body: the unread bytes
            # would desynchronize a kept-alive HTTP/1.1 stream.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, body: str, content_type: str = "text/plain"
    ) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if getattr(self, "_deprecated", False):
            self.send_header("Deprecation", "true")
        self.end_headers()
        self.wfile.write(data)

    def _send_not_modified(self, etag: str) -> None:
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("Content-Length", "0")
        if getattr(self, "_deprecated", False):
            self.send_header("Deprecation", "true")
        self.end_headers()

    def _send_error_json(
        self,
        status: int,
        code: str,
        message: str,
        detail: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._send_json(
            status,
            {
                "error": {
                    "code": code,
                    "message": message,
                    "detail": detail or {},
                }
            },
            headers=headers,
        )

    def _drain_request_body(self) -> None:
        """Discard an unread request body so keep-alive stays in sync.

        A handler that answers before calling :meth:`_read_body` (an
        unknown route, a 429 from admission control) leaves the declared
        body bytes on the wire; parsed as the next request line they
        would desynchronize the kept-alive stream. Bodies within
        ``MAX_BODY_BYTES`` are read and dropped; anything larger closes
        the connection instead (same policy as :meth:`_read_body`).
        """
        if getattr(self, "_body_consumed", True):
            return
        self._body_consumed = True
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except (TypeError, ValueError):
            length = 0
        if length <= 0:
            return
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            return
        while length > 0:
            chunk = self.rfile.read(min(65536, length))
            if not chunk:
                self.close_connection = True
                return
            length -= len(chunk)

    def _read_body(self) -> Any:
        """The request body as parsed JSON (an object, or a batch list)."""
        self._body_consumed = True
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # Reject without reading — and drop the connection, since the
            # unread body bytes would be parsed as the next request line.
            self.close_connection = True
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
                detail={"limit_bytes": MAX_BODY_BYTES, "got_bytes": length},
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise InvalidRequestError(
                "empty request body; expected a JSON object"
            )
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise InvalidRequestError(
                f"request body is not valid JSON: {exc}"
            )
        if not isinstance(body, (dict, list)):
            raise InvalidRequestError(
                "request body must be a JSON object (or a list of "
                "objects for a batch submission)"
            )
        return body

    def send_response(self, code: int, message: str | None = None) -> None:
        self._status = code
        super().send_response(code, message)

    def end_headers(self) -> None:
        # Record the request metrics *before* the body flush: once a
        # client has read this response, a follow-up scrape — possibly
        # served by another pool worker — must already see the request
        # counted. Recording after the write loses that ordering.
        self._record_http_metrics()
        super().end_headers()

    def _record_http_metrics(self) -> None:
        """Land this request in ``repro_http_requests_total`` (by method
        and status) and the ``repro_http_request_seconds`` latency
        histogram, exactly once per guarded request."""
        if not getattr(self, "_http_metrics_armed", False):
            return
        self._http_metrics_armed = False
        try:
            registry = self.scheduler.metrics_registry
            registry.counter(
                "repro_http_requests_total",
                "HTTP requests served",
                labelnames=("method", "status"),
            ).inc(method=self.command, status=str(self._status or 0))
            registry.histogram(
                "repro_http_request_seconds",
                "HTTP request handling latency",
            ).observe(time.perf_counter() - self._http_started)
        except Exception:  # pragma: no cover - metrics must not 500
            logger.debug("http metrics recording failed", exc_info=True)

    def _guarded(self, handler) -> None:
        """Run a route handler, mapping errors to envelope responses.

        Also arms the HTTP instrumentation: the metrics land when the
        response headers flush (see :meth:`end_headers`), with the
        ``finally`` below as the fallback for requests that never get a
        response out (e.g. a torn connection).
        """
        self._http_started = time.perf_counter()
        self._http_metrics_armed = True
        self._status = 0
        self._body_consumed = "Content-Length" not in self.headers
        try:
            self._guarded_inner(handler)
        finally:
            self._record_http_metrics()

    def _guarded_inner(self, handler) -> None:
        try:
            try:
                handler()
            finally:
                # Error or not, leave no unread body bytes behind: the
                # next kept-alive request would parse them as its line.
                self._drain_request_body()
        except ApiError as exc:
            headers = None
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None:
                headers = {"Retry-After": str(int(retry_after))}
            self._send_error_json(
                exc.http_status, exc.code, str(exc), exc.detail,
                headers=headers,
            )
        except ScenarioError as exc:
            self._send_error_json(400, "invalid-scenario", str(exc))
        except ServiceError as exc:
            self._send_error_json(400, "invalid-request", str(exc))
        except ReproError as exc:
            # Unknown task/algorithm, bad kwargs, and similar spec-level
            # failures surfacing from below the scenario layer.
            self._send_error_json(400, "invalid-request", str(exc))
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - last-resort 500
            logger.exception("unhandled error serving %s", self.path)
            self._send_error_json(
                500, "internal", f"{type(exc).__name__}: {exc}"
            )

    # -- verbs -------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._guarded(self._get)

    def do_POST(self) -> None:  # noqa: N802
        self._guarded(self._post)

    def do_DELETE(self) -> None:  # noqa: N802
        self._guarded(self._delete)

    # -- routes ------------------------------------------------------------------
    def _get(self) -> None:
        path, query = self._split_route()
        if path == "/healthz":
            scheduler = self.scheduler
            health = scheduler.health()
            payload = {
                # Liveness ("the process answers") and readiness ("the
                # pool accepts and executes work") are distinct signals;
                # "status" keeps its historic ok-when-alive meaning.
                "status": "ok" if health["ready"] else "degraded",
                "version": __version__,
                "api": "v1",
                "uptime_seconds": (
                    time.time()
                    - self.server.started_at  # type: ignore[attr-defined]
                ),
                "journal": scheduler.journal is not None,
                "scheduler_id": scheduler.scheduler_id,
                "leases": scheduler._lease_active(),
                "http": self.server.pool_stats(),  # type: ignore[attr-defined]
            }
            payload.update(
                {
                    "live": health["live"],
                    "ready": health["ready"],
                    "queue_depth": health["queue_depth"],
                    "workers": health["workers"],
                    "journal_detail": health["journal"],
                    "events": health["events"],
                    "running_jobs": health["running_jobs"],
                }
            )
            self._send_json(200, payload)
            return
        if path == "/events":
            self._send_json(200, self._events(query))
            return
        if path == "/metrics":
            params = dict(parse_qsl(query, keep_blank_values=True))
            fmt = params.get("format", "json")
            if fmt == "prometheus":
                self._send_text(
                    200,
                    self.scheduler.metrics_prometheus(),
                    content_type=PROMETHEUS_CONTENT_TYPE,
                )
            elif fmt == "json":
                self._send_json(200, self.scheduler.metrics())
            else:
                raise InvalidRequestError(
                    f"unknown metrics format {fmt!r}",
                    detail={"valid": ["json", "prometheus"]},
                )
            return
        if path == "/jobs":
            self._send_json(200, self._list_jobs(query))
            return
        match = _TRACE_ROUTE.match(path)
        if match:
            self._send_json(200, self.scheduler.trace(match.group(1)))
            return
        match = _PROGRESS_ROUTE.match(path)
        if match:
            self._send_json(200, self.scheduler.progress(match.group(1)))
            return
        match = _JOB_ROUTE.match(path)
        if match:
            payload = self.scheduler.describe(match.group(1))
            etag = job_etag(payload)
            if etag in (self.headers.get("If-None-Match") or ""):
                self._send_not_modified(etag)
                return
            self._send_json(200, payload, headers={"ETag": etag})
            return
        match = _RESULT_ROUTE.match(path)
        if match:
            params = dict(parse_qsl(query, keep_blank_values=True))
            if params.get("partial") in ("1", "true", "yes"):
                self._send_json(
                    200, self.scheduler.partial_result(match.group(1))
                )
                return
            job = self.scheduler.get(match.group(1))
            if job.state != JobState.DONE or job.result is None:
                raise ResultNotReadyError(
                    f"job {job.id} is {job.state}; results exist only "
                    "for done jobs",
                    detail={"state": job.state},
                )
            self._send_json(
                200, self.scheduler.describe(job.id, include_result=True)
            )
            return
        raise UnknownRouteError(f"no route for GET {path}")

    def _list_jobs(self, query: str) -> dict[str, Any]:
        """The paginated ``GET /v1/jobs`` payload."""
        params = dict(parse_qsl(query, keep_blank_values=True))
        unknown = set(params) - _LIST_PARAMS
        if unknown:
            raise InvalidRequestError(
                f"unknown query parameter(s): {', '.join(sorted(unknown))}",
                detail={"valid": sorted(_LIST_PARAMS)},
            )
        state = params.get("state")
        if state is not None and state not in JobState.ALL:
            raise InvalidRequestError(
                f"unknown state filter {state!r}",
                detail={"valid": sorted(JobState.ALL)},
            )
        limit = MAX_PAGE_SIZE
        if "limit" in params:
            try:
                limit = int(params["limit"])
            except ValueError:
                limit = -1
            if not 1 <= limit <= MAX_PAGE_SIZE:
                raise InvalidRequestError(
                    f"limit must be an integer in 1..{MAX_PAGE_SIZE}, "
                    f"got {params['limit']!r}"
                )
        jobs = self.scheduler.list_jobs()
        after = params.get("after")
        if after is not None:
            # The cursor is a job id: resume from the position *after* it
            # in submission order, before any state filtering — so a
            # filtered walk never skips jobs that changed state between
            # pages.
            index = next(
                (i for i, job in enumerate(jobs) if job.id == after), None
            )
            if index is None:
                raise InvalidRequestError(
                    f"unknown cursor {after!r}; pass a job id previously "
                    "returned by this listing"
                )
            jobs = jobs[index + 1:]
        if state is not None:
            jobs = [job for job in jobs if job.state == state]
        page = jobs[:limit]
        return {
            "jobs": [job.to_payload() for job in page],
            "next": page[-1].id if len(jobs) > len(page) else None,
        }

    def _events(self, query: str) -> dict[str, Any]:
        """The ``GET /v1/events`` payload: events past a cursor.

        ``after`` is the last sequence number the client saw (0 for "from
        the beginning of the ring"); passing the response's
        ``next_cursor`` back delivers each event exactly once.
        ``timeout`` long-polls (clamped to ``MAX_EVENT_POLL_SECONDS``);
        ``job`` filters to one job id plus its shard children.
        """
        params = dict(parse_qsl(query, keep_blank_values=True))
        unknown = set(params) - _EVENTS_PARAMS
        if unknown:
            raise InvalidRequestError(
                f"unknown query parameter(s): {', '.join(sorted(unknown))}",
                detail={"valid": sorted(_EVENTS_PARAMS)},
            )
        try:
            after = int(params.get("after", 0))
        except ValueError:
            raise InvalidRequestError(
                f"after must be an integer cursor, got {params['after']!r}"
            )
        if after < 0:
            raise InvalidRequestError(
                f"after must be >= 0, got {after}"
            )
        try:
            timeout = float(params.get("timeout", 0.0))
        except ValueError:
            raise InvalidRequestError(
                f"timeout must be a number of seconds, "
                f"got {params['timeout']!r}"
            )
        timeout = min(max(0.0, timeout), MAX_EVENT_POLL_SECONDS)
        limit = MAX_EVENT_BATCH
        if "limit" in params:
            try:
                limit = int(params["limit"])
            except ValueError:
                limit = -1
            if not 1 <= limit <= MAX_EVENT_BATCH:
                raise InvalidRequestError(
                    f"limit must be an integer in 1..{MAX_EVENT_BATCH}, "
                    f"got {params['limit']!r}"
                )
        if timeout <= 0:
            return self.scheduler.events(
                after=after, limit=limit, job_id=params.get("job")
            )
        # Long-polls park this worker thread for up to ``timeout``
        # seconds; the pool grants only ``longpoll_slots`` of those at
        # once. With no slot free, degrade to an immediate answer — the
        # client sees an empty batch and re-polls, and submit/poll
        # traffic always finds a worker.
        server = self.server  # type: ignore[assignment]
        if not server.acquire_longpoll_slot():
            server.count_rejection("longpoll-slots")
            return self.scheduler.events(
                after=after, limit=limit, job_id=params.get("job")
            )
        try:
            return self.scheduler.events(
                after=after,
                timeout=timeout,
                limit=limit,
                job_id=params.get("job"),
            )
        finally:
            server.release_longpoll_slot()

    def _admit_submission(self) -> None:
        """Admission control: refuse work the scheduler cannot absorb.

        Raises :class:`~repro.exceptions.ServiceOverloadedError` (429 +
        ``Retry-After``) when the job queue is at the configured depth —
        a bounded queue with an explicit refusal beats an unbounded one
        that accepts everything and serves nothing.
        """
        server = self.server  # type: ignore[assignment]
        retry_after = server.admission_retry_after()
        if retry_after is None:
            return
        server.count_rejection("admission")
        depth = self.scheduler.queue.depth
        limit = server.config.admission_queue_depth
        raise ServiceOverloadedError(
            f"job queue depth {depth} is at the admission limit "
            f"({limit}); retry after {retry_after}s",
            detail={
                "queue_depth": depth,
                "admission_queue_depth": limit,
            },
            retry_after=retry_after,
        )

    def _post(self) -> None:
        path, _ = self._split_route()
        if path != "/jobs":
            raise UnknownRouteError(f"no route for POST {path}")
        body = self._read_body()
        if isinstance(body, list):
            self._post_batch(body)
            return
        self._admit_submission()
        job = self.scheduler.submit_request(body)
        self._send_json(201, job.to_payload())

    def _post_batch(self, items: list[Any]) -> None:
        """Submit a list of jobs; per-item outcomes, 207 Multi-Status.

        Items are submitted in order, each independently: one bad item
        reports its own error envelope in place without failing the
        rest (identical items still dedup against each other through
        the scheduler, like any other submission). Admission control is
        applied per item too — a batch that fills the queue partway
        through gets ``201`` entries up to that point and ``429``
        envelopes (with ``detail.retry_after``) for the remainder.
        """
        if not items:
            raise InvalidRequestError(
                "batch submission must contain at least one job"
            )
        results: list[dict[str, Any]] = []
        for index, item in enumerate(items):
            try:
                if not isinstance(item, dict):
                    raise InvalidRequestError(
                        f"batch item {index} must be a JSON object"
                    )
                self._admit_submission()
                job = self.scheduler.submit_request(item)
            except ApiError as exc:
                results.append({
                    "status": exc.http_status,
                    "error": {
                        "code": exc.code,
                        "message": str(exc),
                        "detail": exc.detail,
                    },
                })
            except ScenarioError as exc:
                results.append({
                    "status": 400,
                    "error": {
                        "code": "invalid-scenario",
                        "message": str(exc),
                        "detail": {},
                    },
                })
            except ReproError as exc:
                results.append({
                    "status": 400,
                    "error": {
                        "code": "invalid-request",
                        "message": str(exc),
                        "detail": {},
                    },
                })
            else:
                results.append({"status": 201, "job": job.to_payload()})
        self._send_json(207, {"jobs": results})

    def _delete(self) -> None:
        path, _ = self._split_route()
        match = _JOB_ROUTE.match(path)
        if not match:
            raise UnknownRouteError(f"no route for DELETE {path}")
        job = self.scheduler.cancel(match.group(1))
        self._send_json(200, job.to_payload())


class ServiceServer:
    """A scheduler bound to a listening HTTP socket.

    ``port=0`` asks the OS for a free port (tests); :attr:`url` reports
    the resolved address either way. :meth:`start` serves from a
    background thread, :meth:`serve_forever` blocks (the CLI path); both
    are shut down by :meth:`stop`, which also stops the scheduler.

    Requests are served by a bounded pool
    (:class:`~repro.service.pool.PooledHTTPServer`) sized by ``config``;
    the default :class:`~repro.service.pool.PoolConfig` suits tests and
    small deployments.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        host: str = "127.0.0.1",
        port: int = 8765,
        config: PoolConfig | None = None,
    ):
        self.scheduler = scheduler
        self._http = PooledHTTPServer(
            (host, port), _Handler, scheduler, config
        )
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve requests from a daemon thread (idempotent)."""
        if self._thread is not None:
            return
        self.scheduler.start()
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI mode)."""
        self.scheduler.start()
        self._http.serve_forever()

    def stop(self, drain: bool = False) -> None:
        """Stop accepting requests, then stop the worker pool.

        Ordering matters for promptness: the event bus is closed first so
        in-flight ``GET /v1/events`` long-polls wake immediately instead
        of running out their full timeout, then the HTTP pool drains and
        joins, then the scheduler's workers stop.
        """
        self._http.shutdown()
        self._http.server_close()
        self.scheduler.event_bus.close()
        self._http.stop_pool()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.scheduler.stop(drain=drain)

    def __enter__(self) -> ServiceServer:
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"ServiceServer({self.url}, {self.scheduler!r})"
