"""Graph counterparts of the ⊕/⊖ operators: edge-cluster literals.

Section 6: "The 'augment' (resp. 'reduct') operators are defined as edge
insertions (resp. edge deletions)", and the scalability study clusters edges
with k-means exactly as tuples are clustered in the tabular case. An
:class:`EdgeCluster` groups edges by k-means over their feature vectors;
reduct removes a cluster's edges from the current graph, augment inserts a
cluster's edges from the *pool* graph (the graph-world universal dataset).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import TableError
from ..ml.kmeans import KMeans
from .bipartite import BipartiteGraph, Edge


@dataclass(frozen=True, slots=True)
class EdgeCluster:
    """A set of pool-graph edges treated as one atomic ⊕/⊖ unit."""

    label: str
    edge_keys: frozenset[tuple[int, int]]

    def __len__(self) -> int:
        return len(self.edge_keys)

    def __repr__(self) -> str:
        return f"EdgeCluster({self.label}, |edges|={len(self.edge_keys)})"


def cluster_edges(
    graph: BipartiteGraph, n_clusters: int, seed: int = 0
) -> list[EdgeCluster]:
    """Partition the graph's edges into at most ``n_clusters`` clusters by
    k-means over edge features (falling back to (user, item) coordinates
    when edges carry no features)."""
    if n_clusters < 1:
        raise TableError("n_clusters must be >= 1")
    if graph.num_edges == 0:
        return []
    features = graph.edge_feature_matrix()
    if features.size == 0:
        features = np.array([[e.user, e.item] for e in graph.edges], dtype=float)
    labels = KMeans(n_clusters=n_clusters, seed=seed).fit_predict(features)
    clusters: dict[int, list[Edge]] = {}
    for edge, label in zip(graph.edges, labels):
        clusters.setdefault(int(label), []).append(edge)
    return [
        EdgeCluster(
            label=f"edges#c{j}",
            edge_keys=frozenset(e.key for e in members),
        )
        for j, members in sorted(clusters.items())
    ]


def reduct_edges(graph: BipartiteGraph, cluster: EdgeCluster) -> BipartiteGraph:
    """Graph ⊖: delete the cluster's edges from ``graph``."""
    return graph.remove_edges(cluster.edge_keys)


def augment_edges(
    graph: BipartiteGraph, pool: BipartiteGraph, cluster: EdgeCluster
) -> BipartiteGraph:
    """Graph ⊕: insert the cluster's edges (taken from ``pool``) into
    ``graph``; edges already present are left as-is."""
    additions = [
        e for e in pool.edges
        if e.key in cluster.edge_keys and not graph.has_edge(*e.key)
    ]
    return graph.add_edges(additions)


def aggregate_edge_features(
    graph: BipartiteGraph, n_groups: int
) -> BipartiteGraph:
    """Reduce edge-feature dimensionality by averaging feature groups.

    Mirrors the appendix scalability setup ("we leveraged the graph's
    structure to reduce the input feature space from 34 to 10 by aggregating
    attributes from similar types of relations").
    """
    if n_groups < 1:
        raise TableError("n_groups must be >= 1")
    features = graph.edge_feature_matrix()
    if features.size == 0:
        return graph
    dims = features.shape[1]
    n_groups = min(n_groups, dims)
    bounds = np.array_split(np.arange(dims), n_groups)
    new_edges = []
    for edge, row in zip(graph.edges, features):
        grouped = tuple(float(row[g].mean()) for g in bounds)
        new_edges.append(Edge(edge.user, edge.item, grouped))
    return BipartiteGraph(graph.n_users, graph.n_items, new_edges, name=graph.name)
