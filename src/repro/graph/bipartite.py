"""Bipartite user–item interaction graphs (Task T5's data substrate).

The paper's T5 "takes as input a bipartite graph between users and products,
and links indicate their interaction"; augment/reduct become edge insertions
and deletions. A :class:`BipartiteGraph` is immutable like :class:`Table`:
edge additions/removals return new graphs, which keeps graph-valued search
states side-effect free.

Edges carry a feature vector (e.g. rating, recency, channel) used by the
edge-clustering that derives the graph counterpart of domain literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import TableError


@dataclass(frozen=True, slots=True)
class Edge:
    """A user–item interaction with an optional feature vector."""

    user: int
    item: int
    features: tuple[float, ...] = ()

    @property
    def key(self) -> tuple[int, int]:
        return (self.user, self.item)


class BipartiteGraph:
    """An immutable bipartite graph over ``n_users`` × ``n_items``."""

    __slots__ = ("n_users", "n_items", "_edges", "_edge_index", "name")

    def __init__(
        self,
        n_users: int,
        n_items: int,
        edges: Iterable[Edge] = (),
        name: str = "",
    ):
        if n_users < 1 or n_items < 1:
            raise TableError("bipartite graph needs at least one user and item")
        self.n_users = int(n_users)
        self.n_items = int(n_items)
        self.name = name
        unique: dict[tuple[int, int], Edge] = {}
        for edge in edges:
            if not (0 <= edge.user < n_users and 0 <= edge.item < n_items):
                raise TableError(
                    f"edge {edge.key} outside ({n_users} users, {n_items} items)"
                )
            unique[edge.key] = edge
        self._edges: tuple[Edge, ...] = tuple(unique.values())
        self._edge_index: frozenset[tuple[int, int]] = frozenset(unique)

    # -- accessors ---------------------------------------------------------------
    @property
    def edges(self) -> tuple[Edge, ...]:
        return self._edges

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def shape(self) -> tuple[int, int]:
        """(num_edges, num_feature_dims) — mirrors the paper's graph 'size'."""
        dims = len(self._edges[0].features) if self._edges else 0
        return (self.num_edges, dims)

    def has_edge(self, user: int, item: int) -> bool:
        """Whether the (user, item) interaction exists."""
        return (user, item) in self._edge_index

    def user_items(self, user: int) -> set[int]:
        """Items this user interacted with."""
        return {e.item for e in self._edges if e.user == user}

    def adjacency_lists(self) -> tuple[list[list[int]], list[list[int]]]:
        """(per-user item lists, per-item user lists)."""
        by_user: list[list[int]] = [[] for _ in range(self.n_users)]
        by_item: list[list[int]] = [[] for _ in range(self.n_items)]
        for e in self._edges:
            by_user[e.user].append(e.item)
            by_item[e.item].append(e.user)
        return by_user, by_item

    def edge_feature_matrix(self) -> np.ndarray:
        """(num_edges, dims) matrix of edge features (zeros if featureless)."""
        if not self._edges:
            return np.zeros((0, 0))
        dims = len(self._edges[0].features)
        return np.array(
            [e.features if len(e.features) == dims else (0.0,) * dims
             for e in self._edges]
        )

    def degree_stats(self) -> dict[str, float]:
        """Mean/max degree summaries for both node sides."""
        by_user, by_item = self.adjacency_lists()
        user_deg = [len(x) for x in by_user]
        item_deg = [len(x) for x in by_item]
        return {
            "mean_user_degree": float(np.mean(user_deg)),
            "mean_item_degree": float(np.mean(item_deg)),
            "isolated_users": int(sum(1 for d in user_deg if d == 0)),
            "isolated_items": int(sum(1 for d in item_deg if d == 0)),
        }

    # -- edge algebra (immutable) ---------------------------------------------------
    def add_edges(self, new_edges: Iterable[Edge]) -> "BipartiteGraph":
        """Graph with ``new_edges`` inserted (the paper's graph ⊕)."""
        return BipartiteGraph(
            self.n_users, self.n_items, list(self._edges) + list(new_edges),
            name=self.name,
        )

    def remove_edges(self, keys: Iterable[tuple[int, int]]) -> "BipartiteGraph":
        """Graph with the listed (user, item) edges removed (graph ⊖)."""
        gone = set(keys)
        kept = [e for e in self._edges if e.key not in gone]
        return BipartiteGraph(self.n_users, self.n_items, kept, name=self.name)

    def subgraph(self, edge_indices: Sequence[int]) -> "BipartiteGraph":
        """Graph induced by the edges at the given positions."""
        kept = [self._edges[i] for i in edge_indices]
        return BipartiteGraph(self.n_users, self.n_items, kept, name=self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (
            self.n_users == other.n_users
            and self.n_items == other.n_items
            and set(self._edges) == set(other._edges)
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"BipartiteGraph{label}({self.n_users} users x {self.n_items} items, "
            f"{self.num_edges} edges)"
        )


def split_edges(
    graph: BipartiteGraph,
    test_fraction: float,
    rng: np.random.Generator,
    min_train_per_user: int = 1,
) -> tuple[BipartiteGraph, dict[int, set[int]]]:
    """Hold out ~``test_fraction`` of each user's edges as relevance sets.

    Returns the training graph and a mapping user → held-out item set. Users
    keep at least ``min_train_per_user`` training edges so every user stays
    connected during training.
    """
    per_user: dict[int, list[Edge]] = {}
    for e in graph.edges:
        per_user.setdefault(e.user, []).append(e)
    held: dict[int, set[int]] = {}
    kept: list[Edge] = []
    for user in sorted(per_user):
        edges = sorted(per_user[user], key=lambda e: e.item)
        n_test = int(round(test_fraction * len(edges)))
        n_test = min(n_test, max(0, len(edges) - min_train_per_user))
        if n_test > 0:
            chosen = set(
                int(i) for i in rng.choice(len(edges), size=n_test, replace=False)
            )
            held[user] = {edges[i].item for i in chosen}
            kept.extend(e for i, e in enumerate(edges) if i not in chosen)
        else:
            kept.extend(edges)
    train = BipartiteGraph(graph.n_users, graph.n_items, kept, name=graph.name)
    return train, held
