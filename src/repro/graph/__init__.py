"""Bipartite graph substrate for the GNN recommendation task (T5)."""

from .bipartite import BipartiteGraph, Edge, split_edges
from .evaluation import evaluate_ranking, train_and_evaluate
from .lightgcn import LightGCN, normalized_adjacency
from .operators import (
    EdgeCluster,
    aggregate_edge_features,
    augment_edges,
    cluster_edges,
    reduct_edges,
)

__all__ = [
    "BipartiteGraph",
    "Edge",
    "EdgeCluster",
    "LightGCN",
    "aggregate_edge_features",
    "augment_edges",
    "cluster_edges",
    "evaluate_ranking",
    "normalized_adjacency",
    "reduct_edges",
    "split_edges",
    "train_and_evaluate",
]
