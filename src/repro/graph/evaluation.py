"""Ranking evaluation harness for the recommendation task (T5).

Trains a LightGCN on the training edges of a graph state and scores it with
the paper's P5 measures: Precision@n, Recall@n and NDCG@n over held-out
relevance sets.
"""

from __future__ import annotations

from ..ml.metrics import mean_ranking_metric, ndcg_at_k, precision_at_k, recall_at_k
from .bipartite import BipartiteGraph
from .lightgcn import LightGCN


def evaluate_ranking(
    model: LightGCN,
    heldout: dict[int, set[int]],
    ks: tuple[int, ...] = (5, 10),
) -> dict[str, float]:
    """P@k / R@k / NDCG@k averaged over users with held-out items.

    Users whose held-out set is empty are skipped (no ground truth); users
    missing from the training graph get empty recommendations and score 0.
    """
    out: dict[str, float] = {}
    users = [u for u, items in sorted(heldout.items()) if items]
    if not users:
        return {f"{name}@{k}": 0.0 for k in ks for name in ("precision", "recall", "ndcg")}
    max_k = max(ks)
    recommendations = {u: model.recommend(u, max_k) for u in users}
    for k in ks:
        out[f"precision@{k}"] = mean_ranking_metric(
            precision_at_k(recommendations[u], heldout[u], k) for u in users
        )
        out[f"recall@{k}"] = mean_ranking_metric(
            recall_at_k(recommendations[u], heldout[u], k) for u in users
        )
        out[f"ndcg@{k}"] = mean_ranking_metric(
            ndcg_at_k(recommendations[u], heldout[u], k) for u in users
        )
    return out


def train_and_evaluate(
    graph: BipartiteGraph,
    heldout: dict[int, set[int]],
    ks: tuple[int, ...] = (5, 10),
    seed: int = 0,
    **lightgcn_params,
) -> tuple[dict[str, float], float]:
    """Fit LightGCN on ``graph``; return (ranking metrics, training cost).

    An empty training graph scores zero everywhere with zero cost (the
    degenerate state a fully-reduced search branch can reach).
    """
    if graph.num_edges == 0:
        zeros = {
            f"{name}@{k}": 0.0
            for k in ks
            for name in ("precision", "recall", "ndcg")
        }
        return zeros, 0.0
    model = LightGCN(seed=seed, **lightgcn_params)
    model.fit(graph)
    return evaluate_ranking(model, heldout, ks=ks), model.training_cost_
