"""LightGCN — simplified graph convolution for recommendation (He et al.).

The paper's T5 model: "A LightGCN, a variant of graph neural networks
optimized for fast graph learning, is trained to predict top-k missing edges
in an input bipartite graph". LightGCN drops feature transforms and
non-linearities entirely: user/item embeddings are propagated through the
symmetric-normalized bipartite adjacency,

    E^(k+1) = D^{-1/2} A D^{-1/2} E^(k),

the final representation is the mean over layers 0..K, and scores are inner
products. Training minimizes BPR loss with SGD over (user, pos, neg)
triples. Implemented on ``scipy.sparse``; deterministic for a fixed seed.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..exceptions import ModelError
from ..rng import make_rng
from .bipartite import BipartiteGraph


def normalized_adjacency(graph: BipartiteGraph) -> sparse.csr_matrix:
    """Symmetric-normalized (users+items) × (users+items) adjacency Â."""
    n = graph.n_users + graph.n_items
    if graph.num_edges == 0:
        return sparse.csr_matrix((n, n))
    rows, cols = [], []
    for e in graph.edges:
        u, i = e.user, graph.n_users + e.item
        rows += [u, i]
        cols += [i, u]
    data = np.ones(len(rows))
    adj = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
    degree = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degree[nonzero])
    d_mat = sparse.diags(inv_sqrt)
    return d_mat @ adj @ d_mat


class LightGCN:
    """LightGCN with BPR training.

    Parameters mirror the original paper: ``embedding_dim``, number of
    propagation ``layers``, BPR ``epochs``/``learning_rate``/``l2``. All
    sampling derives from ``seed``.
    """

    def __init__(
        self,
        embedding_dim: int = 16,
        layers: int = 2,
        epochs: int = 30,
        learning_rate: float = 0.05,
        l2: float = 1e-4,
        n_neg_per_pos: int = 1,
        seed: int = 0,
    ):
        self.embedding_dim = int(embedding_dim)
        self.layers = int(layers)
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.l2 = float(l2)
        self.n_neg_per_pos = int(n_neg_per_pos)
        self.seed = int(seed)
        self.user_emb_: np.ndarray | None = None
        self.item_emb_: np.ndarray | None = None
        self.training_cost_: float = 0.0
        self._graph: BipartiteGraph | None = None

    # -- training ---------------------------------------------------------------
    def fit(self, graph: BipartiteGraph) -> "LightGCN":
        """Train embeddings on the graph with BPR over sampled triples."""
        if graph.num_edges == 0:
            raise ModelError("cannot train LightGCN on a graph with no edges")
        rng = make_rng(self.seed)
        self._graph = graph
        n_u, n_i, dim = graph.n_users, graph.n_items, self.embedding_dim
        base = rng.normal(scale=0.1, size=(n_u + n_i, dim))
        adj = normalized_adjacency(graph)
        edges = graph.edges
        users = np.array([e.user for e in edges])
        items = np.array([e.item for e in edges])
        interacted = [set() for _ in range(n_u)]
        for e in edges:
            interacted[e.user].add(e.item)
        for _ in range(self.epochs):
            final = self._propagate(base, adj)
            user_final, item_final = final[:n_u], final[n_u:]
            order = rng.permutation(len(edges))
            grads = np.zeros_like(base)
            for idx in order:
                u, pos = int(users[idx]), int(items[idx])
                for _ in range(self.n_neg_per_pos):
                    neg = int(rng.integers(n_i))
                    attempts = 0
                    while neg in interacted[u] and attempts < 10:
                        neg = int(rng.integers(n_i))
                        attempts += 1
                    e_u = user_final[u]
                    diff = e_u @ (item_final[pos] - item_final[neg])
                    coeff = -1.0 / (1.0 + np.exp(np.clip(diff, -35, 35)))
                    grads[u] += coeff * (item_final[pos] - item_final[neg])
                    grads[n_u + pos] += coeff * e_u
                    grads[n_u + neg] += -coeff * e_u
            # Layer-averaged propagation is linear and symmetric, so the
            # gradient w.r.t. the base embeddings is the propagated gradient.
            grads = self._propagate(grads, adj)
            scale = max(1.0, np.sqrt(len(edges)))
            base -= self.learning_rate * (grads / scale + self.l2 * base)
        final = self._propagate(base, adj)
        self.user_emb_ = final[:n_u]
        self.item_emb_ = final[n_u:]
        self.training_cost_ = float(
            self.epochs * (graph.num_edges * dim + adj.nnz * dim * self.layers)
        )
        return self

    def _propagate(self, base: np.ndarray, adj: sparse.csr_matrix) -> np.ndarray:
        layers = [base]
        current = base
        for _ in range(self.layers):
            current = adj @ current
            layers.append(current)
        return np.mean(layers, axis=0)

    # -- inference ----------------------------------------------------------------
    def scores(self, user: int) -> np.ndarray:
        """Inner-product scores of every item for one user."""
        if self.user_emb_ is None:
            raise ModelError("LightGCN is not fitted")
        return self.item_emb_ @ self.user_emb_[user]

    def recommend(
        self, user: int, k: int, exclude_training: bool = True
    ) -> list[int]:
        """Top-``k`` unseen items for ``user`` (training edges excluded)."""
        scores = self.scores(user).copy()
        if exclude_training and self._graph is not None:
            for item in self._graph.user_items(user):
                scores[item] = -np.inf
        top = np.argsort(-scores, kind="mergesort")[:k]
        return [int(i) for i in top]

    def recommend_all(self, k: int) -> dict[int, list[int]]:
        """Top-``k`` recommendations for every user with a training edge."""
        if self._graph is None:
            raise ModelError("LightGCN is not fitted")
        active = sorted({e.user for e in self._graph.edges})
        return {u: self.recommend(u, k) for u in active}
