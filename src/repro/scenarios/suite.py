"""The suite runner: fan a filtered scenario set over an exec backend.

``SuiteRunner`` turns the registry from a catalogue into a workload
engine: select scenarios with the registry's filter syntax, run each one
through the factory on any :mod:`repro.exec` backend (serial / thread /
forked process), and collect per-scenario outcomes — skyline size, budget
usage, wall-clock, the best decisive-measure value — into one suite
report (JSON payload + markdown summary table).

With a :class:`~repro.scenarios.cache.ResultCache` attached, every
completed scenario is persisted content-addressed by its spec
fingerprint; an immediately repeated run completes via cache with zero
re-executed scenarios. A failing scenario never aborts the suite: the
outcome records the error and the suite exit status reflects it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from ..exec import Backend, make_backend
from ..report import build_payload
from .cache import ResultCache
from .factory import ScenarioFactory
from .registry import REGISTRY, ScenarioRegistry, load_builtin_scenarios
from .spec import Scenario


@dataclass
class ScenarioOutcome:
    """One scenario's run record — plain picklable data."""

    name: str
    task: str
    algorithm: str
    tags: tuple[str, ...]
    fingerprint: str
    cached: bool = False
    run_seconds: float = 0.0
    result: dict[str, Any] | None = None
    error: str | None = None

    @property
    def summary(self) -> dict[str, Any]:
        """Skyline-quality digest of the result payload.

        ``best_decisive`` is on the *normalized minimize* scale every
        entry's ``performance`` dict carries (lower = better for all
        measure kinds — the same convention as ``DiscoveryResult.best_by``),
        so ``min`` picks the best entry for scores and costs alike.
        """
        if self.result is None:
            return {}
        measures = self.result.get("measures", [])
        # The paper's default decisive measure is the last one in P.
        decisive = measures[-1] if measures else ""
        entries = self.result.get("entries", [])
        best = min(
            (e["performance"][decisive] for e in entries
             if decisive in e.get("performance", {})),
            default=None,
        )
        return {
            "skyline_size": len(entries),
            "n_valuated": self.result.get("n_valuated", 0),
            "terminated_by": self.result.get("terminated_by", ""),
            "decisive": decisive,
            "best_decisive": best,
            "elapsed_seconds": self.result.get("elapsed_seconds", 0.0),
        }

    def to_payload(self) -> dict[str, Any]:
        """The JSON form persisted inside suite reports."""
        return {
            "name": self.name,
            "task": self.task,
            "algorithm": self.algorithm,
            "tags": list(self.tags),
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "run_seconds": self.run_seconds,
            "summary": self.summary,
            "error": self.error,
            "result": self.result,
        }


@dataclass
class SuiteReport:
    """All outcomes of one suite invocation plus run-wide statistics."""

    outcomes: list[ScenarioOutcome]
    selectors: tuple[str, ...] = ()
    backend: str = "serial"
    n_jobs: int = 1
    cache_dir: str | None = None
    wall_seconds: float = 0.0

    @property
    def n_scenarios(self) -> int:
        return len(self.outcomes)

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def failures(self) -> list[ScenarioOutcome]:
        return [o for o in self.outcomes if o.error is not None]

    def to_payload(self) -> dict[str, Any]:
        """The JSON form written as ``suite_report.json``."""
        return {
            "suite": {
                "selectors": list(self.selectors),
                "backend": self.backend,
                "n_jobs": self.n_jobs,
                "cache_dir": self.cache_dir,
                "wall_seconds": self.wall_seconds,
                "n_scenarios": self.n_scenarios,
                "cache_hits": self.cache_hits,
                "n_failures": len(self.failures),
            },
            "scenarios": [o.to_payload() for o in self.outcomes],
        }

    def markdown_summary(self) -> str:
        """A GitHub-flavored summary table, one row per scenario."""
        lines = [
            "| scenario | task | algorithm | skyline | N | "
            "best (decisive, norm↓) | seconds | cached |",
            "|---|---|---|---:|---:|---:|---:|:---:|",
        ]
        for o in self.outcomes:
            if o.error is not None:
                lines.append(
                    f"| {o.name} | {o.task} | {o.algorithm} "
                    f"| — | — | error | {o.run_seconds:.2f} | — |"
                )
                continue
            s = o.summary
            best = (
                f"{s['best_decisive']:.4f} ({s['decisive']})"
                if s.get("best_decisive") is not None
                else "—"
            )
            lines.append(
                f"| {o.name} | {o.task} | {o.algorithm} "
                f"| {s['skyline_size']} | {s['n_valuated']} | {best} "
                f"| {s['elapsed_seconds']:.2f} "
                f"| {'hit' if o.cached else 'miss'} |"
            )
        lines.append(
            f"\n{self.n_scenarios} scenario(s), {self.cache_hits} from "
            f"cache, {len(self.failures)} failed, "
            f"{self.wall_seconds:.2f}s wall on "
            f"{self.backend}×{self.n_jobs}."
        )
        return "\n".join(lines)


class SuiteRunner:
    """Run a filtered scenario set over a backend, with optional caching."""

    def __init__(
        self,
        registry: ScenarioRegistry | None = None,
        factory: ScenarioFactory | None = None,
        cache: ResultCache | None = None,
        backend: str | Backend = "serial",
        n_jobs: int = 0,
    ):
        if registry is None:
            registry = load_builtin_scenarios()
        self.registry = registry
        self.factory = factory if factory is not None else ScenarioFactory()
        self.cache = cache
        self.backend = make_backend(backend, n_jobs)

    def select(self, selectors: Sequence[str] = ()) -> list[Scenario]:
        """The scenarios a run with these selectors would execute."""
        return self.registry.filter(*selectors)

    def run(self, selectors: Sequence[str] = ()) -> SuiteReport:
        """Resolve, fan out, collect. Specs are validated *before* any
        scenario runs, so a typo fails the suite instantly."""
        scenarios = self.select(selectors)
        for spec in scenarios:
            self.factory.resolve(spec)
        start = time.perf_counter()
        outcomes = self.backend.map(self._run_one, scenarios)
        return SuiteReport(
            outcomes=list(outcomes),
            selectors=tuple(selectors),
            backend=self.backend.name,
            n_jobs=self.backend.n_jobs,
            cache_dir=(
                str(self.cache.directory) if self.cache is not None else None
            ),
            wall_seconds=time.perf_counter() - start,
        )

    # -- one scenario ------------------------------------------------------------
    def _run_one(self, spec: Scenario) -> ScenarioOutcome:
        outcome = ScenarioOutcome(
            name=spec.name,
            task=spec.task,
            algorithm=spec.to_row()["algorithm"],
            tags=spec.tags,
            fingerprint=spec.fingerprint(),
        )
        start = time.perf_counter()
        try:
            if self.cache is not None:
                record = self.cache.get(spec)
                if record is not None:
                    outcome.cached = True
                    outcome.result = record["result"]
                    outcome.run_seconds = time.perf_counter() - start
                    return outcome
            result, seconds = self.factory.resolve(spec).run()
            outcome.result = build_payload(result)
            if self.cache is not None:
                self.cache.put(spec, outcome.result, seconds)
        except Exception as exc:  # noqa: BLE001 — suites isolate failures
            outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.run_seconds = time.perf_counter() - start
        return outcome


def run_suite(
    selectors: Sequence[str] = (),
    backend: str = "serial",
    n_jobs: int = 0,
    cache: ResultCache | None = None,
    registry: ScenarioRegistry | None = None,
) -> SuiteReport:
    """One-call convenience over :class:`SuiteRunner` (builtins loaded)."""
    if registry is None:
        load_builtin_scenarios()
        registry = REGISTRY
    runner = SuiteRunner(
        registry=registry, cache=cache, backend=backend, n_jobs=n_jobs
    )
    return runner.run(selectors)
