"""The declarative scenario spec: one named, reproducible workload.

A :class:`Scenario` pins down everything a MODis run depends on — the
evaluation task, the algorithm and its kwargs, the search knobs (ε, N,
maxl), corpus scale, seed, estimator, and (optionally) a distributed
worker count. Specs are plain data: registering one costs nothing, and a
suite only pays for the scenarios a filter actually selects.

Two derived views matter downstream:

* :meth:`Scenario.cache_payload` — the *code-relevant* subset of the spec
  (identity fields like ``name``/``tags``/``description`` excluded), in a
  canonical JSON-serializable form;
* :meth:`Scenario.fingerprint` — a content-addressed SHA-256 over that
  payload plus the cache schema version and the package version, used as
  the key of the persistent result cache. Renaming or re-tagging a
  scenario keeps its cache entry; changing anything that could change the
  run's output invalidates it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..exceptions import ScenarioError

#: Bump when the cached result payload's shape changes incompatibly.
CACHE_SCHEMA = 1


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Scenario:
    """A named, declarative MODis workload.

    ``algorithm_kwargs`` are passed through to the algorithm constructor
    (e.g. ``{"k": 5}`` for DivMODis, ``{"population": 16}`` for NSGA-II).
    ``distributed`` > 0 runs the scenario through
    :class:`~repro.distributed.DistributedMODis` with that many workers
    instead of a single-node algorithm.
    """

    name: str
    task: str
    algorithm: str = "bimodis"
    tags: tuple[str, ...] = ()
    algorithm_kwargs: Mapping[str, Any] = field(default_factory=dict)
    epsilon: float = 0.15
    budget: int = 60
    max_level: int = 4
    scale: float = 0.5
    seed: int | None = None
    estimator: str = "mogb"  # "mogb" | "mogb-hist" | "oracle"
    n_bootstrap: int = 20
    distributed: int = 0
    verify: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ScenarioError(
                f"scenario name must be non-empty and whitespace-free, "
                f"got {self.name!r}"
            )
        if self.epsilon <= 0:
            raise ScenarioError(f"{self.name}: epsilon must be positive")
        if self.budget < 1:
            raise ScenarioError(f"{self.name}: budget must be >= 1")
        if self.max_level < 1:
            raise ScenarioError(f"{self.name}: max_level must be >= 1")
        if self.distributed < 0:
            raise ScenarioError(f"{self.name}: distributed must be >= 0")
        object.__setattr__(self, "tags", tuple(self.tags))
        object.__setattr__(self, "algorithm_kwargs",
                           dict(self.algorithm_kwargs))

    # -- derived views -----------------------------------------------------------
    def cache_payload(self) -> dict[str, Any]:
        """The code-relevant spec fields, canonically ordered.

        Identity/metadata fields (``name``, ``tags``, ``description``) are
        deliberately excluded: renaming a scenario must not invalidate its
        cached result, while changing any knob that could change the
        output must.
        """
        return {
            "task": self.task,
            "algorithm": self.algorithm,
            "algorithm_kwargs": dict(sorted(self.algorithm_kwargs.items())),
            "epsilon": self.epsilon,
            "budget": self.budget,
            "max_level": self.max_level,
            "scale": self.scale,
            "seed": self.seed,
            "estimator": self.estimator,
            "n_bootstrap": self.n_bootstrap,
            "distributed": self.distributed,
            "verify": self.verify,
        }

    def fingerprint(self) -> str:
        """Content-addressed cache key: SHA-256 over the canonical spec."""
        from .. import __version__

        material = canonical_json(
            {
                "schema": CACHE_SCHEMA,
                "version": __version__,
                "spec": self.cache_payload(),
            }
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def to_row(self) -> dict[str, Any]:
        """Flat summary row for ``repro suite list`` and suite reports."""
        return {
            "name": self.name,
            "task": self.task,
            "algorithm": self.algorithm if not self.distributed
            else f"distributed({self.distributed})",
            "tags": ",".join(self.tags),
            "epsilon": self.epsilon,
            "budget": self.budget,
            "scale": self.scale,
        }
