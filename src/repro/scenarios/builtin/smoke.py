"""Smoke scenarios: seconds-fast, exercised twice by the CI suite job.

Tiny corpora (scale 0.2), small budgets, the exact ``oracle`` estimator
(cheap at this scale and estimator-noise-free, so cached results are
stable and byte-identical across backends). Everything here carries the
``smoke`` tag — ``repro suite --filter tag:smoke`` is the CI invocation.
"""

from __future__ import annotations

from ..registry import register
from ..spec import Scenario

_SMOKE = dict(
    epsilon=0.3, budget=10, max_level=2, scale=0.2, estimator="oracle"
)

register(
    Scenario(
        name="smoke-t3-apx",
        task="T3",
        algorithm="apx",
        tags=("smoke", "t3", "apx"),
        description="tiny ApxMODis on the linear avocado task",
        **_SMOKE,
    )
)

register(
    Scenario(
        name="smoke-t3-bimodis",
        task="T3",
        algorithm="bimodis",
        tags=("smoke", "t3", "bimodis"),
        description="tiny bi-directional search on T3",
        **_SMOKE,
    )
)

register(
    Scenario(
        name="smoke-t3-nsga2",
        task="T3",
        algorithm="nsga2",
        algorithm_kwargs={"population": 6, "generations": 3, "seed": 7},
        tags=("smoke", "t3", "nsga2"),
        description="tiny NSGA-II comparator on T3",
        epsilon=0.3,
        budget=14,
        max_level=2,
        scale=0.2,
        estimator="oracle",
    )
)

register(
    Scenario(
        name="smoke-t1-nobimodis",
        task="T1",
        algorithm="nobimodis",
        tags=("smoke", "t1", "nobimodis"),
        description="tiny non-optimized bi-directional search on T1",
        **_SMOKE,
    )
)
