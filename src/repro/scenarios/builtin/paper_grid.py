"""The paper's evaluation grid: T1–T5 × five discovery algorithms.

One scenario per (task, algorithm) cell of the paper's Tables 4–6: the
four headline MODis variants (via the factory's ``MODIS_VARIANTS`` table,
so kwargs like DivMODis' ``k`` stay single-sourced) plus the NSGA-II
comparator of §5.4. Search knobs mirror the benchmark harness defaults
(ε = 0.15, N = 80, maxl = 5, scale 0.5).
"""

from __future__ import annotations

from ..factory import MODIS_VARIANTS
from ..registry import register
from ..spec import Scenario

_TASKS = ("T1", "T2", "T3", "T4", "T5")

for _task in _TASKS:
    for _variant, (_key, _kwargs) in MODIS_VARIANTS.items():
        register(
            Scenario(
                name=f"{_task.lower()}-{_key}",
                task=_task,
                algorithm=_key,
                algorithm_kwargs=_kwargs,
                tags=("paper", "grid", _task.lower(), _key),
                epsilon=0.15,
                budget=80,
                max_level=5,
                scale=0.5,
                description=f"{_variant} on {_task} (paper grid)",
            )
        )
    register(
        Scenario(
            name=f"{_task.lower()}-nsga2",
            task=_task,
            algorithm="nsga2",
            algorithm_kwargs={"population": 16, "generations": 8},
            tags=("paper", "grid", _task.lower(), "nsga2"),
            epsilon=0.15,
            budget=80,
            max_level=5,
            scale=0.5,
            description=f"NSGA-II comparator on {_task} (paper grid)",
        )
    )
