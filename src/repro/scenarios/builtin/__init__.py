"""Built-in scenario modules, auto-discovered by the registry.

Every module in this package registers :class:`~repro.scenarios.spec.Scenario`
specs into the module-level registry at import time;
:func:`repro.scenarios.load_builtin_scenarios` imports them all (sorted by
module name, so registration order is deterministic). Add a module here
and its scenarios ship — no central list to update.

Modules: :mod:`paper_grid` (the paper's T1–T5 × variant evaluation grid),
:mod:`smoke` (seconds-fast CI scenarios, tag ``smoke``), :mod:`stress`
(distributed / RL / graph / high-ε variants, tag ``stress``).
"""

# Scenario modules export nothing; they register specs as a side effect.
__all__: list[str] = []
