"""Stress and diversity scenarios beyond the paper grid.

The ROADMAP's "as many scenarios as you can imagine" direction: the
distributed coordinator, the RL comparator, graph-task diversification,
high-ε coarse approximation, and a wide NSGA-II population — each one a
named, cacheable workload instead of a hand-wired script.
"""

from __future__ import annotations

from ..registry import register
from ..spec import Scenario

register(
    Scenario(
        name="t3-distributed-3",
        task="T3",
        tags=("stress", "distributed", "t3"),
        distributed=3,
        epsilon=0.15,
        budget=60,
        max_level=4,
        scale=0.4,
        description="T3 through DistributedMODis with 3 shared-nothing workers",
    )
)

register(
    Scenario(
        name="t1-rl",
        task="T1",
        algorithm="rl",
        algorithm_kwargs={"n_policies": 3, "episodes": 20, "seed": 11},
        tags=("stress", "rl", "t1"),
        epsilon=0.15,
        budget=80,
        max_level=5,
        scale=0.5,
        description="RL comparator (multi-policy Q-learning) on T1",
    )
)

register(
    Scenario(
        name="t2-bimodis-high-eps",
        task="T2",
        algorithm="bimodis",
        tags=("stress", "high-eps", "t2", "bimodis"),
        epsilon=0.45,
        budget=80,
        max_level=5,
        scale=0.5,
        description="coarse ε-grid: fewer cells, more aggressive pruning",
    )
)

register(
    Scenario(
        name="t5-divmodis-graph",
        task="T5",
        algorithm="divmodis",
        algorithm_kwargs={"k": 6, "alpha": 0.4},
        tags=("stress", "graph", "t5", "divmodis"),
        epsilon=0.2,
        budget=60,
        max_level=4,
        scale=0.6,
        description="diversified skyline over the LightGCN bipartite task",
    )
)

register(
    Scenario(
        name="t4-nsga2-wide",
        task="T4",
        algorithm="nsga2",
        algorithm_kwargs={"population": 30, "generations": 10, "seed": 3},
        tags=("stress", "nsga2", "t4"),
        epsilon=0.15,
        budget=120,
        max_level=5,
        scale=0.5,
        description="wide-population NSGA-II on the six-measure T4",
    )
)
