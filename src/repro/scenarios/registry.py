"""The scenario registry: named specs, filterable, auto-discovered.

Mirrors the registry idiom of large evaluation harnesses (MTEB's task
registry, task-factory's config table): scenario *modules* under
:mod:`repro.scenarios.builtin` register plain :class:`Scenario` specs at
import time, and callers select a working set with composable selectors
instead of hand-wiring scripts.

Selector syntax (``repro suite --filter``):

* ``tag:smoke``        — scenarios carrying the tag;
* ``task:T1``          — scenarios of an evaluation task (case-insensitive);
* ``algorithm:bimodis`` (alias ``algo:``) — scenarios of an algorithm key;
* anything else        — a :mod:`fnmatch` glob over scenario names
  (``t3-*``, ``smoke-t?-apx``).

One selector string may hold comma-separated alternatives (OR); passing
several selectors intersects them (AND). ``filter()`` with no selectors
returns every registered scenario, sorted by name.
"""

from __future__ import annotations

import fnmatch
import importlib
import pkgutil

from ..exceptions import ScenarioError
from .spec import Scenario


def _matches(scenario: Scenario, term: str) -> bool:
    """One selector term against one scenario."""
    term = term.strip()
    if not term:
        return False
    key, _, value = term.partition(":")
    if value:
        key = key.lower()
        if key == "tag":
            return value in scenario.tags
        if key == "task":
            return scenario.task.lower() == value.lower()
        if key in ("algorithm", "algo"):
            return scenario.algorithm == value
        raise ScenarioError(
            f"unknown selector kind {key!r} in {term!r}; "
            "have tag:, task:, algorithm: or a name glob"
        )
    return fnmatch.fnmatchcase(scenario.name, term)


class ScenarioRegistry:
    """An ordered, name-keyed collection of :class:`Scenario` specs."""

    def __init__(self) -> None:
        self._scenarios: dict[str, Scenario] = {}

    def register(self, scenario: Scenario) -> Scenario:
        """Add a scenario; duplicate names are an error, not an overwrite."""
        if scenario.name in self._scenarios:
            raise ScenarioError(
                f"scenario {scenario.name!r} is already registered"
            )
        self._scenarios[scenario.name] = scenario
        return scenario

    def remove(self, name: str) -> None:
        """Drop one scenario (tests and interactive sessions)."""
        self._scenarios.pop(name, None)

    def clear(self) -> None:
        """Drop every registered scenario."""
        self._scenarios.clear()

    def get(self, name: str) -> Scenario:
        """Look one scenario up by exact name."""
        try:
            return self._scenarios[name]
        except KeyError:
            raise ScenarioError(
                f"unknown scenario {name!r}; "
                f"{len(self._scenarios)} registered"
            ) from None

    def filter(self, *selectors: str) -> list[Scenario]:
        """AND of selectors; OR of comma-separated terms within each."""
        chosen = sorted(self._scenarios.values(), key=lambda s: s.name)
        for selector in selectors:
            terms = [t for t in selector.split(",") if t.strip()]
            if not terms:
                continue
            chosen = [
                s for s in chosen if any(_matches(s, t) for t in terms)
            ]
        return chosen

    @property
    def names(self) -> list[str]:
        return sorted(self._scenarios)

    def __iter__(self):
        return iter(sorted(self._scenarios.values(), key=lambda s: s.name))

    def __len__(self) -> int:
        return len(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __repr__(self) -> str:
        return f"ScenarioRegistry({len(self)} scenarios)"


#: The module-level registry every builtin module and user module targets.
REGISTRY = ScenarioRegistry()


def register(scenario: Scenario) -> Scenario:
    """Register into the module-level :data:`REGISTRY` (decorator-friendly)."""
    return REGISTRY.register(scenario)


_BUILTINS_LOADED = False


def load_builtin_scenarios() -> ScenarioRegistry:
    """Import every module under :mod:`repro.scenarios.builtin` once.

    Each builtin module registers its specs at import time; discovery is a
    :func:`pkgutil.iter_modules` walk, so dropping a new module into the
    ``builtin`` package is all it takes to ship more scenarios.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return REGISTRY
    from . import builtin as builtin_pkg

    for info in sorted(pkgutil.iter_modules(builtin_pkg.__path__),
                       key=lambda m: m.name):
        importlib.import_module(f"{builtin_pkg.__name__}.{info.name}")
    _BUILTINS_LOADED = True
    return REGISTRY
