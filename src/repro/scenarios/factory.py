"""Resolving a :class:`~repro.scenarios.spec.Scenario` into a runnable pipeline.

The factory is the single place where a declarative spec meets the
concrete machinery: tasks come from
:func:`repro.datalake.tasks.make_task` through a shared, thread-safe
:class:`TaskCache` (universal joins and cost calibration are the expensive
part — pay once per distinct ``(task, scale, seed)``), algorithms come
from :data:`repro.core.algorithms.ALGORITHMS`, and a positive
``distributed`` count routes the run through
:class:`~repro.distributed.DistributedMODis`.

Resolution is eager about *validation* (unknown task, unknown algorithm,
kwargs the constructor would reject — all fail fast, before any corpus is
generated) but lazy about *construction*: the task is only built when the
resolved scenario is actually run.
"""

from __future__ import annotations

import inspect
import threading
import time
from typing import Any, Callable

from ..core.algorithms import ALGORITHMS, DiscoveryResult
from ..core.estimator import TestStore
from ..datalake.tasks import TASK_BUILDERS, DiscoveryTask, make_task
from ..distributed import DistributedMODis
from ..exceptions import ScenarioError
from .spec import Scenario

#: The paper's four headline MODis variants, in table order: display name →
#: (algorithm registry key, fixed kwargs). The benchmark harness and the
#: paper-grid scenarios both derive from this single table.
MODIS_VARIANTS: dict[str, tuple[str, dict[str, Any]]] = {
    "ApxMODis": ("apx", {}),
    "NOBiMODis": ("nobimodis", {}),
    "BiMODis": ("bimodis", {}),
    "DivMODis": ("divmodis", {"k": 5}),
}


def make_variant(variant: str, config, **kwargs):
    """Instantiate a paper variant by display name on a configuration."""
    try:
        key, fixed = MODIS_VARIANTS[variant]
    except KeyError:
        raise ScenarioError(
            f"unknown MODis variant {variant!r}; have {sorted(MODIS_VARIANTS)}"
        ) from None
    return ALGORITHMS[key](config, **{**fixed, **kwargs})


class TaskCache:
    """Thread-safe memo of built tasks keyed by ``(name, scale, seed)``.

    Building a task runs the universal join and a real training pass for
    cost calibration; suites re-use one instance across every scenario that
    shares the key. The search space is forced inside the lock so
    concurrent scenarios never race on the lazy ``task.space`` build.
    Cached tasks are shared — callers must treat them as immutable (every
    run builds its own fresh ``Configuration``/estimator).
    """

    def __init__(self, builder: Callable[..., DiscoveryTask] = make_task):
        self._builder = builder
        self._tasks: dict[tuple[str, float, int | None], DiscoveryTask] = {}
        self._lock = threading.Lock()

    def get(self, name: str, scale: float = 1.0,
            seed: int | None = None) -> DiscoveryTask:
        """The shared task for a key, building (and memoizing) on miss."""
        key = (name, float(scale), seed)
        with self._lock:
            task = self._tasks.get(key)
            if task is None:
                task = self._builder(name, scale=scale, seed=seed)
                task.space  # force the lazy search-space build once
                self._tasks[key] = task
            return task

    def clear(self) -> None:
        """Drop every memoized task (frees the corpora)."""
        with self._lock:
            self._tasks.clear()

    def __len__(self) -> int:
        return len(self._tasks)

    def materialization_stats(self) -> dict[str, int]:
        """Aggregate materialization-cache counters over the built tasks.

        Sums the hit/miss/byte/eviction counters of every cached task's
        search-space caches (Table, matrix and mask LRUs for tabular
        spaces; the subgraph LRU for graph spaces) — the payload behind
        the service's ``GET /metrics`` ``materialization`` section. Jobs
        run on the process backend valuate in forked children, so their
        counters die with the child; thread/serial backends aggregate
        fully here.
        """
        totals = {
            "spaces": 0,
            "hits": 0,
            "misses": 0,
            "bytes": 0,
            "entries": 0,
            "evictions": 0,
        }
        with self._lock:
            tasks = list(self._tasks.values())
        for task in tasks:
            space = task._space
            stats = getattr(space, "cache_stats", None) if space else None
            if not stats:
                continue
            totals["spaces"] += 1
            for key in ("hits", "misses", "bytes", "entries", "evictions"):
                totals[key] += int(stats.get(key, 0))
        return totals


#: Process-wide default cache (suites, benchmarks, examples all share it).
TASK_CACHE = TaskCache()


class ResolvedScenario:
    """A validated spec bound to its task cache, ready to run."""

    def __init__(self, spec: Scenario, task_cache: TaskCache):
        self.spec = spec
        self._task_cache = task_cache

    @property
    def algorithm_cls(self):
        return ALGORITHMS[self.spec.algorithm]

    @property
    def task(self) -> DiscoveryTask:
        """The (shared, cached) task instance — built on first access."""
        spec = self.spec
        return self._task_cache.get(spec.task, spec.scale, spec.seed)

    def build(self, store: TestStore | None = None):
        """Construct the runnable: an algorithm or a distributed runner.

        ``store`` warm-starts the estimator with a historical test set
        ``T`` (the service's shared oracle store): recorded states answer
        from history instead of re-training, and a sufficiently covered
        history lets :class:`~repro.core.estimator.MOGBEstimator` skip its
        bootstrap oracle calls entirely. Distributed runs keep per-worker
        private estimators, so they cannot accept a shared store.
        """
        spec = self.spec
        task = self.task
        if spec.distributed:
            if store is not None:
                raise ScenarioError(
                    f"{spec.name}: distributed runs keep private per-worker "
                    "estimators and cannot warm-start from a shared store"
                )
            return DistributedMODis(
                lambda: task.build_config(
                    estimator=spec.estimator, n_bootstrap=spec.n_bootstrap
                ),
                n_workers=spec.distributed,
                epsilon=spec.epsilon,
                budget=spec.budget,
                max_level=spec.max_level,
            )
        config = task.build_config(
            estimator=spec.estimator, n_bootstrap=spec.n_bootstrap
        )
        if store is not None:
            config.estimator.store = store
        return self.algorithm_cls(
            config,
            epsilon=spec.epsilon,
            budget=spec.budget,
            max_level=spec.max_level,
            **spec.algorithm_kwargs,
        )

    def run(
        self, store: TestStore | None = None
    ) -> tuple[DiscoveryResult, float]:
        """Build and run the scenario; returns (result, wall seconds)."""
        runnable = self.build(store=store)
        start = time.perf_counter()
        result = runnable.run(verify=self.spec.verify)
        return result, time.perf_counter() - start

    def __repr__(self) -> str:
        return f"ResolvedScenario({self.spec.name!r})"


class ScenarioFactory:
    """Validates specs and binds them to a :class:`TaskCache`."""

    def __init__(self, task_cache: TaskCache | None = None):
        self.task_cache = task_cache if task_cache is not None else TASK_CACHE

    def resolve(self, spec: Scenario) -> ResolvedScenario:
        """Fail-fast validation; no corpus generation happens here."""
        if spec.task not in TASK_BUILDERS:
            raise ScenarioError(
                f"{spec.name}: unknown task {spec.task!r}; "
                f"have {sorted(TASK_BUILDERS)}"
            )
        if spec.algorithm not in ALGORITHMS:
            raise ScenarioError(
                f"{spec.name}: unknown algorithm {spec.algorithm!r}; "
                f"have {sorted(ALGORITHMS)}"
            )
        if spec.estimator not in ("mogb", "mogb-hist", "oracle"):
            raise ScenarioError(
                f"{spec.name}: unknown estimator {spec.estimator!r}"
            )
        if spec.distributed:
            if spec.algorithm_kwargs:
                raise ScenarioError(
                    f"{spec.name}: algorithm_kwargs do not apply to "
                    "distributed runs (workers run the seeded reduce search)"
                )
            if spec.budget < spec.distributed:
                raise ScenarioError(
                    f"{spec.name}: budget must cover at least one state "
                    "per distributed worker"
                )
        else:
            self._check_kwargs(spec)
        return ResolvedScenario(spec, self.task_cache)

    @staticmethod
    def _check_kwargs(spec: Scenario) -> None:
        """Reject kwargs the algorithm constructor would choke on."""
        signature = inspect.signature(ALGORITHMS[spec.algorithm].__init__)
        accepted = {
            name
            for name, param in signature.parameters.items()
            if param.kind in (param.POSITIONAL_OR_KEYWORD, param.KEYWORD_ONLY)
        } - {"self", "config", "epsilon", "budget", "max_level"}
        unknown = set(spec.algorithm_kwargs) - accepted
        if unknown:
            raise ScenarioError(
                f"{spec.name}: {spec.algorithm} does not accept "
                f"{sorted(unknown)}; accepted extras: {sorted(accepted)}"
            )
