"""Content-addressed, on-disk cache of scenario results.

The first persistent caching layer in the codebase: a suite run stores
each scenario's JSON result payload under
``<directory>/<fingerprint>.json``, where the fingerprint is the SHA-256
of the scenario's canonical code-relevant spec (see
:meth:`Scenario.fingerprint`). Re-running a suite therefore skips every
scenario whose spec (and package version) is unchanged — and *only*
those: touching any knob that could change the output (budget, ε, seed,
scale, algorithm kwargs, …) yields a different address, so stale hits are
structurally impossible rather than policed by TTLs.

Writes are atomic (temp file + ``os.replace``) so concurrent suite
workers — threads or forked processes sharing the directory — can race
on the same scenario without ever exposing a torn file. Corrupt or
foreign files are treated as misses and evicted on read.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from .spec import CACHE_SCHEMA, Scenario

#: Default cache root; override with --cache-dir or $REPRO_CACHE_DIR.
DEFAULT_CACHE_DIR = "~/.cache/repro/scenarios"


def default_cache_dir() -> Path:
    """$REPRO_CACHE_DIR used verbatim (if set), else the per-user default."""
    root = os.environ.get("REPRO_CACHE_DIR", "")
    if root:
        return Path(root).expanduser()
    return Path(DEFAULT_CACHE_DIR).expanduser()


class ResultCache:
    """Maps scenario fingerprints to stored result payloads on disk."""

    def __init__(self, directory: str | Path | None = None):
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )

    def path_for(self, spec: Scenario) -> Path:
        """The on-disk entry path a spec addresses (existing or not)."""
        return self.directory / f"{spec.fingerprint()}.json"

    def get(self, spec: Scenario) -> dict[str, Any] | None:
        """The stored record for an identical spec, or ``None`` on a miss."""
        path = self.path_for(spec)
        try:
            with path.open() as fh:
                record = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A torn or foreign file: evict and treat as a miss.
            path.unlink(missing_ok=True)
            return None
        if (
            not isinstance(record, dict)
            or record.get("schema") != CACHE_SCHEMA
            or record.get("fingerprint") != spec.fingerprint()
        ):
            path.unlink(missing_ok=True)
            return None
        return record

    def put(self, spec: Scenario, result: dict[str, Any],
            elapsed_seconds: float) -> Path:
        """Store one scenario result atomically; returns the entry path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        record = {
            "schema": CACHE_SCHEMA,
            "fingerprint": spec.fingerprint(),
            "scenario": {
                "name": spec.name,
                "tags": list(spec.tags),
                **spec.cache_payload(),
            },
            "elapsed_seconds": elapsed_seconds,
            "cached_at": time.time(),
            "result": result,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("w") as fh:
            json.dump(record, fh, indent=2)
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:
        return f"ResultCache({str(self.directory)!r}, {len(self)} entries)"
