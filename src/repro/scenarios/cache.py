"""Content-addressed, on-disk cache of scenario results.

The first persistent caching layer in the codebase: a suite run stores
each scenario's JSON result payload under
``<directory>/<fingerprint>.json``, where the fingerprint is the SHA-256
of the scenario's canonical code-relevant spec (see
:meth:`Scenario.fingerprint`). Re-running a suite therefore skips every
scenario whose spec (and package version) is unchanged — and *only*
those: touching any knob that could change the output (budget, ε, seed,
scale, algorithm kwargs, …) yields a different address, so stale hits are
structurally impossible rather than policed by TTLs.

Writes are atomic (temp file + ``os.replace``) so concurrent suite
workers — threads or forked processes sharing the directory — can race
on the same scenario without ever exposing a torn file. Corrupt or
foreign files are treated as misses and evicted on read.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..ioutil import atomic_write_json
from .spec import CACHE_SCHEMA, Scenario

#: Temp files older than this are considered abandoned by a dead writer
#: and safe to sweep; younger ones may belong to an in-flight put().
ORPHAN_TTL_SECONDS = 3600.0

#: Default cache root; override with --cache-dir or $REPRO_CACHE_DIR.
DEFAULT_CACHE_DIR = "~/.cache/repro/scenarios"


def default_cache_dir() -> Path:
    """$REPRO_CACHE_DIR used verbatim (if set), else the per-user default."""
    root = os.environ.get("REPRO_CACHE_DIR", "")
    if root:
        return Path(root).expanduser()
    return Path(DEFAULT_CACHE_DIR).expanduser()


@dataclass(frozen=True)
class CacheStats:
    """What ``repro suite cache stats`` prints: size and age extremes."""

    directory: str
    entries: int
    total_bytes: int
    oldest: float | None  # epoch seconds of the oldest entry's cached_at
    newest: float | None

    def to_payload(self) -> dict[str, Any]:
        """The JSON form (``repro suite cache stats`` machine output)."""
        return {
            "directory": self.directory,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "oldest": self.oldest,
            "newest": self.newest,
        }


class ResultCache:
    """Maps scenario fingerprints to stored result payloads on disk."""

    def __init__(self, directory: str | Path | None = None):
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )

    def path_for(self, spec: Scenario) -> Path:
        """The on-disk entry path a spec addresses (existing or not)."""
        return self.directory / f"{spec.fingerprint()}.json"

    def get(self, spec: Scenario) -> dict[str, Any] | None:
        """The stored record for an identical spec, or ``None`` on a miss."""
        path = self.path_for(spec)
        try:
            with path.open() as fh:
                record = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A torn or foreign file: evict and treat as a miss.
            path.unlink(missing_ok=True)
            return None
        if (
            not isinstance(record, dict)
            or record.get("schema") != CACHE_SCHEMA
            or record.get("fingerprint") != spec.fingerprint()
        ):
            path.unlink(missing_ok=True)
            return None
        return record

    def put(self, spec: Scenario, result: dict[str, Any],
            elapsed_seconds: float) -> Path:
        """Store one scenario result atomically; returns the entry path.

        Crash-safe via :func:`repro.ioutil.atomic_write_json`: a worker
        killed mid-write can only leave a stale ``*.tmp.*`` behind
        (swept by evict/clear), never a truncated entry under the real
        name, and racing writers never touch each other's temp file.
        """
        record = {
            "schema": CACHE_SCHEMA,
            "fingerprint": spec.fingerprint(),
            "scenario": {
                "name": spec.name,
                "tags": list(spec.tags),
                **spec.cache_payload(),
            },
            "elapsed_seconds": elapsed_seconds,
            "cached_at": time.time(),
            "result": result,
        }
        return atomic_write_json(self.path_for(spec), record, indent=2)

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed.

        Also sweeps *all* temp files, live or not (they are not counted —
        they were never entries): clearing the cache is explicitly
        destructive, unlike evict's age-guarded sweep.
        """
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            self._sweep_orphans(max_age=0.0)
        return removed

    # -- inspection & eviction ---------------------------------------------------
    def _scan(self, evict_corrupt: bool = False) -> list[tuple[Path, float, int]]:
        """(path, cached_at, size) per readable entry, oldest first.

        Unreadable or foreign files are skipped — and deleted only when
        ``evict_corrupt`` is set (the eviction path). Inspection must
        never destroy files: a mispointed ``--cache-dir`` would otherwise
        turn ``repro suite cache stats`` into a directory wipe.
        """
        rows: list[tuple[Path, float, int]] = []
        if not self.directory.is_dir():
            return rows
        for path in self.directory.glob("*.json"):
            try:
                size = path.stat().st_size
                with path.open() as fh:
                    record = json.load(fh)
                cached_at = float(record["cached_at"])
                if record.get("schema") != CACHE_SCHEMA:
                    raise ValueError("foreign schema")
            except (OSError, ValueError, KeyError, TypeError,
                    json.JSONDecodeError):
                if evict_corrupt:
                    path.unlink(missing_ok=True)
                continue
            rows.append((path, cached_at, size))
        rows.sort(key=lambda row: row[1])
        return rows

    def _sweep_orphans(self, max_age: float = ORPHAN_TTL_SECONDS) -> int:
        """Remove temp files abandoned by killed writers.

        Only files older than ``max_age`` seconds go: a younger
        ``*.tmp.*`` may be a concurrent worker's in-flight write, whose
        ``os.replace`` must not be sabotaged. ``clear()`` passes 0 —
        dropping everything is its contract.
        """
        swept = 0
        cutoff = time.time() - max_age
        if self.directory.is_dir():
            for path in self.directory.glob("*.tmp.*"):
                try:
                    if max_age > 0 and path.stat().st_mtime > cutoff:
                        continue
                except OSError:
                    continue
                path.unlink(missing_ok=True)
                swept += 1
        return swept

    def stats(self) -> CacheStats:
        """Entry count, total bytes, and oldest/newest ``cached_at``.

        Pure inspection: corrupt or foreign files are ignored, never
        touched.
        """
        rows = self._scan()
        return CacheStats(
            directory=str(self.directory),
            entries=len(rows),
            total_bytes=sum(size for _, _, size in rows),
            oldest=rows[0][1] if rows else None,
            newest=rows[-1][1] if rows else None,
        )

    def evict(
        self,
        max_age: float | None = None,
        max_entries: int | None = None,
    ) -> int:
        """Delete entries by age and/or count; returns how many went.

        ``max_age`` (seconds) drops every entry cached longer ago than
        that; ``max_entries`` then trims the survivors to the newest N
        (0 keeps none). Eviction is the cache's janitor: corrupt entries
        and abandoned temp files (older than :data:`ORPHAN_TTL_SECONDS`)
        are swept too, all counted in the returned total.
        """
        removed = self._sweep_orphans()
        n_json = (
            sum(1 for _ in self.directory.glob("*.json"))
            if self.directory.is_dir() else 0
        )
        rows = self._scan(evict_corrupt=True)
        removed += n_json - len(rows)  # corrupt/foreign files deleted
        doomed: list[Path] = []
        if max_age is not None:
            cutoff = time.time() - max_age
            doomed = [path for path, at, _ in rows if at < cutoff]
            rows = [row for row in rows if row[1] >= cutoff]
        if max_entries is not None and max_entries >= 0:
            excess = len(rows) - max_entries
            if excess > 0:
                doomed.extend(path for path, _, _ in rows[:excess])
        for path in doomed:
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:
        return f"ResultCache({str(self.directory)!r}, {len(self)} entries)"
