"""Declarative scenario registry + suite runner with a persistent cache.

The paper evaluates MODis over a fixed grid of tasks, algorithms, and
measures; this subsystem makes such workloads first-class:

* :class:`Scenario` — a declarative spec (task, algorithm + kwargs,
  search knobs, scale, seed, optional distributed worker count);
* :data:`REGISTRY` / :class:`ScenarioRegistry` — named, filterable specs
  (``tag:smoke``, ``task:T1``, ``algorithm:bimodis``, name globs), with
  built-ins auto-discovered from :mod:`repro.scenarios.builtin`;
* :class:`ScenarioFactory` — spec → ready-to-run pipeline (tasks through
  a shared :class:`TaskCache`, algorithms from ``ALGORITHMS``,
  ``DistributedMODis`` when requested);
* :class:`SuiteRunner` / :func:`run_suite` — fan a filtered set over any
  :mod:`repro.exec` backend and collect a suite report;
* :class:`ResultCache` — content-addressed on-disk results keyed by the
  spec fingerprint, so repeated suites skip finished scenarios.

CLI surface: ``repro suite [list|run] --filter ... --backend ... --jobs N
--cache-dir DIR [--no-cache]``.

Quickstart::

    from repro.scenarios import REGISTRY, load_builtin_scenarios, run_suite

    load_builtin_scenarios()
    print(REGISTRY.names)
    report = run_suite(["tag:smoke"], backend="thread", n_jobs=2)
    print(report.markdown_summary())
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
    default_cache_dir,
)
from .factory import (
    MODIS_VARIANTS,
    TASK_CACHE,
    ResolvedScenario,
    ScenarioFactory,
    TaskCache,
    make_variant,
)
from .registry import (
    REGISTRY,
    ScenarioRegistry,
    load_builtin_scenarios,
    register,
)
from .spec import CACHE_SCHEMA, Scenario, canonical_json
from .suite import ScenarioOutcome, SuiteReport, SuiteRunner, run_suite

__all__ = [
    "CACHE_SCHEMA",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "MODIS_VARIANTS",
    "REGISTRY",
    "ResolvedScenario",
    "ResultCache",
    "Scenario",
    "ScenarioFactory",
    "ScenarioOutcome",
    "ScenarioRegistry",
    "SuiteReport",
    "SuiteRunner",
    "TASK_CACHE",
    "TaskCache",
    "canonical_json",
    "default_cache_dir",
    "load_builtin_scenarios",
    "make_variant",
    "register",
    "run_suite",
]
