"""Small filesystem helpers shared across the persistence layers.

One idiom, one implementation: the result cache, the service's oracle
store, and the test-store history all persist JSON with the same
crash-safety contract — write to a same-directory temp file, flush and
``fsync``, then atomically rename into place. A writer killed at any
point can only leave a stale temp file behind, never a truncated
document under the real name.

The service's write-ahead journal adds the append-only counterpart:
:func:`append_jsonl` (one fsync'd JSON document per line) and
:func:`read_jsonl` (line-by-line decode that can tolerate a torn final
line — the one partial write a crash mid-append legally leaves behind).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, IO, Iterator


def atomic_write_json(
    path: str | Path, payload: Any, indent: int | None = None
) -> Path:
    """Durably replace ``path`` with ``payload`` serialized as JSON.

    The temp name carries pid *and* thread id so concurrent writers —
    threads in one service, or processes sharing a cache directory —
    never truncate or unlink each other's in-flight file. The parent
    directory is created if missing.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(
        f"{path.suffix}.tmp.{os.getpid()}.{threading.get_ident()}"
    )
    try:
        with tmp.open("w") as fh:
            json.dump(payload, fh, indent=indent)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def fsync_directory(path: str | Path) -> None:
    """Flush a directory's entry table (best effort, POSIX only).

    After ``os.replace``/``unlink`` the *file* contents are durable but
    the *rename itself* may still live only in the directory's page
    cache; journaling layers call this to pin segment rotation and
    compaction renames down. Platforms that cannot ``open`` a directory
    simply skip it.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def append_jsonl(fh: IO[str], payload: Any, fsync: bool = True) -> None:
    """Append one JSON document as a single line to an open text file.

    The line is written in one ``write`` call (newline included) and
    flushed; with ``fsync`` it is also forced to disk before returning,
    which is what makes the journal a *write-ahead* log: once the caller
    proceeds, a crash cannot un-happen the record. A crash mid-append
    leaves at most one torn final line, which :func:`read_jsonl`
    tolerates.
    """
    fh.write(json.dumps(payload, separators=(",", ":")) + "\n")
    fh.flush()
    if fsync:
        os.fsync(fh.fileno())


def read_jsonl(
    path: str | Path, tolerate_torn_tail: bool = True
) -> Iterator[tuple[Any, bool]]:
    """Yield ``(document, ok)`` per line of a JSONL file.

    Undecodable lines yield ``(raw_line, False)`` so callers can count
    corruption without losing their place. A torn *final* line (the only
    corruption a crashed fsync'd appender can produce) is silently
    dropped when ``tolerate_torn_tail`` — it is the record whose append
    never completed, so it never happened.
    """
    with Path(path).open("r", encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # trailing newline of the last complete record
        torn = False
    else:
        torn = tolerate_torn_tail  # file does not end in \n: torn append
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            yield json.loads(line), True
        except json.JSONDecodeError:
            if torn and index == len(lines) - 1:
                return
            yield line, False
