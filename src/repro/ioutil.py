"""Small filesystem helpers shared across the persistence layers.

One idiom, one implementation: the result cache, the service's oracle
store, and the test-store history all persist JSON with the same
crash-safety contract — write to a same-directory temp file, flush and
``fsync``, then atomically rename into place. A writer killed at any
point can only leave a stale temp file behind, never a truncated
document under the real name.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any


def atomic_write_json(
    path: str | Path, payload: Any, indent: int | None = None
) -> Path:
    """Durably replace ``path`` with ``payload`` serialized as JSON.

    The temp name carries pid *and* thread id so concurrent writers —
    threads in one service, or processes sharing a cache directory —
    never truncate or unlink each other's in-flight file. The parent
    directory is created if missing.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(
        f"{path.suffix}.tmp.{os.getpid()}.{threading.get_ident()}"
    )
    try:
        with tmp.open("w") as fh:
            json.dump(payload, fh, indent=indent)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path
