"""MODis — multi-objective skyline dataset generation for data science models.

A full reproduction of "Generating Skyline Datasets for Data Science
Models" (EDBT 2025): given source tables, a fixed deterministic model, and
user-defined performance measures, MODis generates a *skyline set* of
datasets over which the model is expected to perform Pareto-optimally
across all measures.

Quickstart::

    from repro import SkylineQuery, discover
    from repro.core import MeasureSet, score_measure, cost_measure

    result = discover(
        SkylineQuery(
            sources=my_tables,
            target="label",
            model="random_forest_clf",
            task_kind="classification",
            measures=MeasureSet([
                cost_measure("train_cost", cap=1e6),
                score_measure("acc"),
            ]),
        ),
        algorithm="bimodis",
    )
    for entry in result:
        print(entry.description, entry.perf, entry.output_size)

Packages: :mod:`repro.relational` (table engine), :mod:`repro.ml` (model
zoo), :mod:`repro.graph` (bipartite/LightGCN substrate), :mod:`repro.core`
(measures, transducer, algorithms), :mod:`repro.discovery` (baselines),
:mod:`repro.datalake` (synthetic corpora and the paper's tasks T1–T5),
:mod:`repro.scenarios` (declarative suites + the persistent result cache),
and :mod:`repro.service` (the long-running job-queue serving layer).
"""

from .core.algorithms import (
    ALGORITHMS,
    ApxMODis,
    BiMODis,
    DiscoveryResult,
    DivMODis,
    ExactMODis,
    NOBiMODis,
    RLMODis,
)
from .distributed import DistributedMODis
from .exceptions import ReproError
from .query import SkylineQuery, discover, query_to_task
from .report import load_report, save_result

__version__ = "1.8.0"

__all__ = [
    "ALGORITHMS",
    "ApxMODis",
    "BiMODis",
    "DiscoveryResult",
    "DistributedMODis",
    "DivMODis",
    "ExactMODis",
    "NOBiMODis",
    "RLMODis",
    "ReproError",
    "SkylineQuery",
    "__version__",
    "discover",
    "load_report",
    "query_to_task",
    "save_result",
]
