"""Configurations: everything a running of the transducer needs.

Section 3: "A configuration of T, denoted as C = (s_M, O, M, T, E),
initializes a start state ..., a finite set of operators O, a fixed
deterministic model M, an estimator E, and a test set T." Here the search
space fixes s_M and O (the bitmap entries), the performance oracle embodies
M plus its evaluation protocol, and the estimator carries T in its
:class:`~repro.core.estimator.TestStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..exceptions import BackendError, SearchError
from ..exec import BACKENDS
from .estimator import Estimator, PerformanceOracle
from .measures import MeasureSet
from .transducer import SearchSpace

#: Optional cheap valuation: bits -> raw values for a *subset* of measures
#: (e.g. a training-cost proxy computable from the output size alone).
#: BiMODis uses it to partially valuate states before deciding whether the
#: correlation-based pruning rule applies.
CheapOracle = Callable[[int], dict[str, float]]


@dataclass
class Configuration:
    """C = (s_M, O, M, T, E) plus the measure set P."""

    space: SearchSpace
    measures: MeasureSet
    estimator: Estimator
    oracle: PerformanceOracle | None = None
    cheap_oracle: CheapOracle | None = None
    seed: int = 0
    #: Execution backend for parallel stages (see :mod:`repro.exec`).
    backend: str = "serial"
    #: Concurrent jobs for the backend; 0 means one per available CPU.
    n_jobs: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.estimator.measures is not self.measures and (
            self.estimator.measures.names != self.measures.names
        ):
            raise SearchError(
                "estimator and configuration disagree on measure names: "
                f"{self.estimator.measures.names} vs {self.measures.names}"
            )
        if self.backend not in BACKENDS:
            raise BackendError(
                f"unknown backend {self.backend!r}; have {sorted(BACKENDS)}"
            )
        if self.n_jobs < 0:
            raise BackendError("n_jobs must be >= 0 (0 = auto)")

    @property
    def width(self) -> int:
        return self.space.width
