"""The skyline data generator as a finite-state transducer.

Section 3 formalizes generation as ``T = (s_M, S, O, S_F, δ)``: states carry
tables, operators are ⊕/⊖, transitions apply one operator, and a *running*
of ``T`` unfolds a DAG — the running graph ``G_T``. This module provides:

* :class:`Entry` / :class:`SearchSpace` — the bitmap vocabulary. A search
  space fixes the ordered entries (attribute bits, domain-cluster bits, or
  edge-cluster bits) and materializes any bitmap into a concrete artifact
  (a :class:`~repro.relational.Table` or
  :class:`~repro.graph.BipartiteGraph`).
* :class:`TabularSearchSpace` — reduce/augment over a universal table with
  k-means-compressed domain literals (Section 6's construction of D_U).
* :class:`GraphSearchSpace` — the T5 counterpart over edge clusters.
* :class:`Transducer` — OpGen: spawn children by flipping one bit (1→0 is a
  Reduct for the forward search; 0→1 an Augment for the backward search).
* :class:`RunningGraph` — the recorded DAG of valuated states.

Materialization fast path
-------------------------

``TabularSearchSpace`` keeps two materializers. :meth:`~TabularSearchSpace.
materialize` is the compatibility path: a real :class:`Table` built by
row selection, needed wherever downstream code expects relational form
(SQL compilation, UDF pipelines, reports, T5 graphs use their own path).
:meth:`~TabularSearchSpace.materialize_matrix` is the valuation fast path:
the universal table is encoded into a numpy
:class:`~repro.relational.columns.ColumnStore` once, and every state is
served as a :class:`~repro.relational.columns.MatrixView` — ``(X, y)`` by
boolean-mask slicing, no intermediate Table, no per-call encoder fit. Row
survival itself is vectorized: per-cluster membership rows are stacked into
one 2-D bool matrix and reduced with ``np.add.reduceat`` /
``logical_and.reduce`` instead of the old bit-by-bit Python walk, and one
mask per bitmap is shared between ``materialize``, ``materialize_matrix``,
``output_size`` and ``feature_vector`` through a small LRU. Both
materializers memoize into byte-budgeted LRU caches (see ``cache_stats``).
"""

from __future__ import annotations

import abc
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator, Literal as TypingLiteral, Sequence

import numpy as np

from ..exceptions import SearchError
from ..graph.bipartite import BipartiteGraph
from ..obs import Counter
from ..graph.operators import EdgeCluster, augment_edges, cluster_edges
from ..relational.columns import ColumnStore, MatrixView
from ..relational.domain import DomainCluster, cluster_all_domains
from ..relational.table import Table
from .state import State, bits_to_array, flip_bit, iter_clear_bits, iter_set_bits

Direction = TypingLiteral["forward", "backward"]

ENTRY_ATTRIBUTE = "attribute"
ENTRY_CLUSTER = "cluster"
ENTRY_EDGE_CLUSTER = "edge_cluster"


@dataclass(frozen=True, slots=True)
class Entry:
    """One bitmap position: an attribute bit or a value/edge-cluster bit."""

    label: str
    kind: str
    attribute: str = ""  # owning attribute for cluster entries
    payload: Any = None  # DomainCluster / EdgeCluster


class SearchSpace(abc.ABC):
    """The bitmap vocabulary plus a materializer for any bitmap."""

    entries: tuple[Entry, ...]

    # -- geometry ---------------------------------------------------------------
    @property
    def width(self) -> int:
        return len(self.entries)

    @property
    def universal_bits(self) -> int:
        """All entries active: the universal dataset D_U (forward start)."""
        return (1 << self.width) - 1

    @abc.abstractmethod
    def backward_bits(self) -> int:
        """The backward start state s_b produced by BackSt (Section 5.3)."""

    # -- semantics ---------------------------------------------------------------
    @abc.abstractmethod
    def materialize(self, bits: int) -> Any:
        """The artifact (table/graph) the bitmap denotes."""

    @abc.abstractmethod
    def output_size(self, bits: int) -> tuple[int, int]:
        """Paper-style output size: (rows, columns) or (edges, features)."""

    @abc.abstractmethod
    def feature_vector(self, bits: int) -> np.ndarray:
        """Estimator features for the state (bitmap + dataset statistics)."""

    def feature_matrix(self, bits_list: Sequence[int]) -> np.ndarray:
        """Feature vectors for many states, stacked (row i ↔ bits_list[i]).

        The batch API of the valuation hot loop: surrogate estimators hand
        a whole refit window here instead of stacking per-state calls.
        Subclasses with per-state caches (``TabularSearchSpace``) answer
        repeated bitmaps from the shared mask LRU, so a batch costs one
        mask computation per *distinct* state.
        """
        vectors = [self.feature_vector(bits) for bits in bits_list]
        if not vectors:
            return np.zeros((0, 0))
        return np.stack(vectors)

    def valid_flip(self, bits: int, index: int) -> bool:
        """May this entry be flipped from the given bitmap? Default: yes."""
        return True

    def describe_entry(self, index: int) -> str:
        """Human-readable label of one bitmap entry."""
        return self.entries[index].label

    def describe(self, bits: int) -> str:
        """Human-readable set of active entry labels."""
        active = [self.entries[i].label for i in iter_set_bits(bits)]
        return "{" + ", ".join(active) + "}"


def _estimate_nbytes(value: Any) -> int:
    """Approximate in-memory size of a cached materialization artifact."""
    nbytes = getattr(value, "nbytes", None)  # MatrixView / np.ndarray
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, Table):
        # Python-list cells: ~8 bytes of pointer + a shared-ish boxed value;
        # 32/cell is a deliberate overestimate so Tables evict first.
        return value.num_rows * max(value.num_columns, 1) * 32 + 256
    edges = getattr(value, "num_edges", None)  # BipartiteGraph
    if edges is not None:
        return int(edges) * 24 + 256
    return 1024


class _ByteBudgetLRU:
    """Byte-budgeted LRU cache keyed by bitmap (materialization is pure).

    Replaces the old count-bounded cache (512 whole Tables regardless of
    size): entries are charged their estimated footprint and evicted
    least-recently-used until both the byte budget and the entry cap hold.
    A value larger than the whole budget is never admitted (caching it
    would just wipe the cache for one state).

    Thread-safe: scenario suites run concurrent searches over one shared
    search space (see :class:`repro.scenarios.TaskCache`), so lookups and
    evictions from different threads must not interleave mid-update.
    """

    def __init__(self, max_bytes: int = 64 << 20, max_entries: int = 4096):
        self.max_bytes = int(max_bytes)
        self.max_entries = int(max_entries)
        self._store: OrderedDict[Any, tuple[Any, int]] = OrderedDict()
        self._lock = threading.Lock()
        self.bytes = 0
        # Typed counters (repro.obs) instead of bare ints: same semantics,
        # but uniform with the service metrics registry. Unregistered —
        # each cache owns its counters; the scheduler aggregates via
        # ``stats()`` / ``materialization_stats``.
        self.hits = Counter(
            "repro_materialization_cache_hits", "Materialization cache hits."
        )
        self.misses = Counter(
            "repro_materialization_cache_misses",
            "Materialization cache misses.",
        )
        self.evictions = Counter(
            "repro_materialization_cache_evictions",
            "Materialization cache LRU evictions.",
        )
        self.rejected = Counter(
            "repro_materialization_cache_rejected",
            "Values larger than the whole byte budget, never admitted.",
        )

    def get(self, key: Any):
        with self._lock:
            entry = self._store.get(key)
            if entry is not None:
                self._store.move_to_end(key)
                self.hits.inc()
                return entry[0]
            self.misses.inc()
            return None

    def put(self, key: Any, value: Any) -> None:
        size = _estimate_nbytes(value)
        with self._lock:
            if size > self.max_bytes:
                self.rejected.inc()
                return
            old = self._store.pop(key, None)
            if old is not None:
                self.bytes -= old[1]
            self._store[key] = (value, size)
            self.bytes += size
            while self._store and (
                self.bytes > self.max_bytes
                or len(self._store) > self.max_entries
            ):
                _, (_, evicted_size) = self._store.popitem(last=False)
                self.bytes -= evicted_size
                self.evictions.inc()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": int(self.hits.value),
                "misses": int(self.misses.value),
                "bytes": self.bytes,
                "entries": len(self._store),
                "evictions": int(self.evictions.value),
                "rejected": int(self.rejected.value),
                "max_bytes": self.max_bytes,
            }


class TabularSearchSpace(SearchSpace):
    """Bitmap semantics over a universal table.

    Entry layout (fixed order): for each non-target attribute ``A`` of the
    universal table — one ``attribute`` entry, then one ``cluster`` entry
    per k-means domain cluster of ``A``. A bitmap materializes as:

    * columns: the target plus every attribute whose attribute-bit is 1;
    * rows: a row survives iff, for every *active* attribute, its value is
      null or belongs to one of the attribute's *active* clusters.

    Flipping an attribute bit 1→0 is the paper's column Reduct; flipping a
    cluster bit 1→0 is ``⊖_{A ∈ cluster}``; the reverse flips are Augments.
    """

    def __init__(
        self,
        universal: Table,
        target: str,
        max_clusters: int = 6,
        seed: int = 0,
        cache_size: int = 4096,
        cache_bytes: int = 64 << 20,
    ):
        if target not in universal.schema:
            raise SearchError(f"target {target!r} not in universal schema")
        if universal.num_rows == 0:
            raise SearchError("universal table has no rows")
        self.universal = universal
        self.target = target
        self.seed = seed
        clusters = cluster_all_domains(
            universal, max_clusters=max_clusters, seed=seed, exclude=[target]
        )
        entries: list[Entry] = []
        self._attr_entry: dict[str, int] = {}
        self._cluster_entries: dict[str, list[int]] = {}
        for name in universal.schema.names:
            if name == target:
                continue
            self._attr_entry[name] = len(entries)
            entries.append(Entry(label=f"attr:{name}", kind=ENTRY_ATTRIBUTE,
                                 attribute=name))
            self._cluster_entries[name] = []
            for cluster in clusters.get(name, []):
                self._cluster_entries[name].append(len(entries))
                entries.append(
                    Entry(
                        label=f"cl:{cluster.label}",
                        kind=ENTRY_CLUSTER,
                        attribute=name,
                        payload=cluster,
                    )
                )
        if not entries:
            raise SearchError("universal table has no non-target attributes")
        self.entries = tuple(entries)
        self._cache = _ByteBudgetLRU(cache_bytes, cache_size)
        self._matrix_cache = _ByteBudgetLRU(cache_bytes, cache_size)
        # Row-survival masks are tiny (n bools) but recomputed constantly
        # (materialize, output_size, feature_vector, the cheap-cost proxy
        # all need one); share a single computation per bitmap here.
        self._mask_cache = _ByteBudgetLRU(8 << 20, 65536)
        # Precompute row membership per cluster entry for fast materialization.
        self._row_members: dict[int, np.ndarray] = {}
        n = universal.num_rows
        for name, entry_ids in self._cluster_entries.items():
            col = universal._column_ref(name)
            for entry_id in entry_ids:
                cluster: DomainCluster = self.entries[entry_id].payload
                mask = np.fromiter(
                    ((v is not None and v in cluster.values) for v in col),
                    dtype=bool,
                    count=n,
                )
                self._row_members[entry_id] = mask
        self._null_mask: dict[str, np.ndarray] = {
            name: np.fromiter(
                (v is None for v in universal._column_ref(name)), dtype=bool, count=n
            )
            for name in self._attr_entry
        }
        # Stack the per-cluster membership rows into one 2-D bool matrix so
        # row_mask reduces with numpy ops instead of a per-entry Python
        # walk. Cluster entries of one attribute are contiguous in entry
        # order (the layout interleaves each attribute bit with its own
        # clusters), so attribute groups are reduceat segments.
        grouped = [
            (name, entry_ids)
            for name, entry_ids in self._cluster_entries.items()
            if entry_ids
        ]
        self._group_attr_ids = np.array(
            [self._attr_entry[name] for name, _ in grouped], dtype=np.int64
        )
        self._cluster_entry_ids = np.array(
            [e for _, entry_ids in grouped for e in entry_ids], dtype=np.int64
        )
        starts, offset = [], 0
        for _, entry_ids in grouped:
            starts.append(offset)
            offset += len(entry_ids)
        self._group_starts = np.array(starts, dtype=np.int64)
        if grouped:
            self._members_matrix = np.stack(
                [self._row_members[e] for e in self._cluster_entry_ids]
            )
            self._group_null_matrix = np.stack(
                [self._null_mask[name] for name, _ in grouped]
            )
        else:
            self._members_matrix = np.zeros((0, n), dtype=bool)
            self._group_null_matrix = np.zeros((0, n), dtype=bool)
        # Columnar fast path: built lazily on first materialize_matrix call
        # (pure-Table workloads never pay the one-time encode).
        self._column_store: ColumnStore | None = None
        self._column_store_lock = threading.Lock()

    # -- SearchSpace API ----------------------------------------------------------
    def backward_bits(self) -> int:
        """BackSt: all attribute bits on, the densest cluster per attribute.

        Gives a small-but-connected seed table that covers every attribute —
        the tabular analogue of sampling a minimal tuple set that keeps all
        target classes reachable.
        """
        bits = 0
        for name, attr_idx in self._attr_entry.items():
            bits |= 1 << attr_idx
            entry_ids = self._cluster_entries[name]
            if entry_ids:
                densest = max(
                    entry_ids, key=lambda e: int(self._row_members[e].sum())
                )
                bits |= 1 << densest
        return bits

    def row_mask(self, bits: int) -> np.ndarray:
        """Boolean survival mask over universal-table rows for a bitmap.

        Vectorized: active-cluster membership rows are selected from the
        precomputed stacked matrix, OR-reduced per attribute group with
        ``np.add.reduceat``, widened by the attribute's null mask (a null
        never violates a domain constraint), and AND-reduced over the
        active attributes. One mask per bitmap is memoized and shared by
        ``materialize`` / ``materialize_matrix`` / ``output_size`` /
        ``feature_vector``; callers must not mutate the returned array.
        """
        cached = self._mask_cache.get(bits)
        if cached is not None:
            return cached
        n = self.universal.num_rows
        if self._group_starts.size == 0:
            keep = np.ones(n, dtype=bool)
        else:
            active_cluster = (
                np.array(
                    [(bits >> int(e)) & 1 for e in self._cluster_entry_ids],
                    dtype=bool,
                )
            )
            active_attr = np.array(
                [(bits >> int(a)) & 1 for a in self._group_attr_ids],
                dtype=bool,
            )
            if not active_attr.any():
                keep = np.ones(n, dtype=bool)
            else:
                masked = self._members_matrix & active_cluster[:, None]
                covered = np.add.reduceat(masked, self._group_starts, axis=0)
                allowed = covered | self._group_null_matrix
                keep = np.logical_and.reduce(allowed[active_attr], axis=0)
        keep.flags.writeable = False
        self._mask_cache.put(bits, keep)
        return keep

    def active_attributes(self, bits: int) -> list[str]:
        """Names of attributes whose attribute bit is on."""
        return [
            name for name, idx in self._attr_entry.items() if (bits >> idx) & 1
        ]

    def materialize(self, bits: int) -> Table:
        """The compatibility path: a concrete :class:`Table` for a bitmap."""
        cached = self._cache.get(bits)
        if cached is not None:
            return cached
        keep = self.row_mask(bits)
        columns = self.active_attributes(bits) + [self.target]
        # .tolist() hands Table.take native ints directly — the old
        # per-element ``int(i)`` comprehension round-tripped every index
        # through a numpy scalar.
        table = self.universal.project(columns).take(
            np.flatnonzero(keep).tolist()
        )
        self._cache.put(bits, table)
        return table

    @property
    def column_store(self) -> ColumnStore:
        """The lazily built one-time numpy encoding of the universal table."""
        if self._column_store is None:
            with self._column_store_lock:
                if self._column_store is None:
                    self._column_store = ColumnStore(
                        self.universal, target=self.target
                    )
        return self._column_store

    def materialize_matrix(
        self, bits: int, include_binned: bool = False
    ) -> MatrixView:
        """The valuation fast path: the state's ``(X, y)`` as a
        :class:`~repro.relational.columns.MatrixView`.

        Bit-identical to ``TableEncoder(target).fit_transform(
        materialize(bits))`` (the legacy oracle prologue) but served by
        boolean-mask slicing of the precomputed columnar encoding — no
        intermediate Table, no per-call encoder fit.

        ``include_binned=True`` additionally attaches the state's
        pre-binned uint8 training matrix (``view.binned``) sliced from the
        universal bin codes; a cached view without codes is upgraded once
        and re-cached.
        """
        cached = self._matrix_cache.get(bits)
        if cached is not None and (
            not include_binned or cached.binned is not None
        ):
            return cached
        view = self.column_store.encode_subset(
            self.row_mask(bits),
            self.active_attributes(bits),
            include_binned=include_binned,
        )
        self._matrix_cache.put(bits, view)
        return view

    def output_size(self, bits: int) -> tuple[int, int]:
        keep = int(self.row_mask(bits).sum())
        cols = len(self.active_attributes(bits)) + 1
        return (keep, cols)

    def feature_vector(self, bits: int) -> np.ndarray:
        rows, cols = self.output_size(bits)
        stats = np.array(
            [
                rows / max(1, self.universal.num_rows),
                cols / max(1, self.universal.num_columns),
            ]
        )
        return np.concatenate([bits_to_array(bits, self.width), stats])

    def feature_matrix(self, bits_list: Sequence[int]) -> np.ndarray:
        """Batched feature vectors (bit-identical rows to feature_vector).

        The bitmap block is assembled as one array and the size statistics
        come from the shared mask cache, so a surrogate refit window costs
        one vectorized mask per distinct state instead of repeated
        per-state bookkeeping.
        """
        bits_list = list(bits_list)
        if not bits_list:
            return np.zeros((0, self.width + 2))
        bitmap = np.array(
            [[(bits >> i) & 1 for i in range(self.width)] for bits in bits_list],
            dtype=float,
        )
        n_rows = max(1, self.universal.num_rows)
        n_cols = max(1, self.universal.num_columns)
        stats = np.array(
            [
                [rows / n_rows, cols / n_cols]
                for rows, cols in (self.output_size(b) for b in bits_list)
            ]
        )
        return np.concatenate([bitmap, stats], axis=1)

    def valid_flip(self, bits: int, index: int) -> bool:
        """Disallow flips that strand the search in degenerate states.

        * a cluster bit only matters while its attribute is active;
        * the last active attribute must stay (a model needs ≥1 feature);
        * the last active cluster of an active attribute must stay (else
          every non-null row of that attribute dies — drop the attribute
          bit instead, which is a distinct operator).
        """
        entry = self.entries[index]
        active = (bits >> index) & 1
        if entry.kind == ENTRY_ATTRIBUTE:
            if active and len(self.active_attributes(bits)) <= 1:
                return False
            return True
        attr_idx = self._attr_entry[entry.attribute]
        if not (bits >> attr_idx) & 1:
            return False
        if active:
            siblings = self._cluster_entries[entry.attribute]
            active_siblings = sum(1 for e in siblings if (bits >> e) & 1)
            if active_siblings <= 1:
                return False
        return True

    @property
    def cache_stats(self) -> dict[str, Any]:
        """Hit/miss/byte accounting for every materialization cache.

        Top-level ``hits``/``misses``/``bytes``/``entries``/``evictions``
        aggregate the Table, matrix and mask caches; per-cache breakdowns
        ride along under their own keys (also surfaced by the service's
        ``GET /metrics`` as the ``materialization`` section).
        """
        tables = self._cache.stats()
        matrices = self._matrix_cache.stats()
        masks = self._mask_cache.stats()
        combined: dict[str, Any] = {
            key: tables[key] + matrices[key] + masks[key]
            for key in ("hits", "misses", "bytes", "entries", "evictions")
        }
        combined["tables"] = tables
        combined["matrices"] = matrices
        combined["masks"] = masks
        return combined


class GraphSearchSpace(SearchSpace):
    """Bitmap semantics over a pool bipartite graph (Task T5).

    Entries are edge clusters of the pool graph; a bitmap materializes as
    the subgraph containing exactly the active clusters' edges. Flipping
    1→0 deletes a cluster of edges (graph ⊖); 0→1 inserts it (graph ⊕).
    """

    def __init__(
        self,
        pool: BipartiteGraph,
        n_clusters: int = 12,
        seed: int = 0,
        cache_size: int = 256,
        cache_bytes: int = 32 << 20,
    ):
        if pool.num_edges == 0:
            raise SearchError("pool graph has no edges")
        self.pool = pool
        self.seed = seed
        clusters = cluster_edges(pool, n_clusters=n_clusters, seed=seed)
        if not clusters:
            raise SearchError("edge clustering produced no clusters")
        self.entries = tuple(
            Entry(label=f"ec:{c.label}", kind=ENTRY_EDGE_CLUSTER, payload=c)
            for c in clusters
        )
        self._cache = _ByteBudgetLRU(cache_bytes, cache_size)

    @property
    def cache_stats(self) -> dict[str, Any]:
        """Hit/miss/byte accounting for the subgraph materialization cache."""
        return self._cache.stats()

    def backward_bits(self) -> int:
        """The densest single edge cluster — a minimal connected seed."""
        sizes = [len(e.payload) for e in self.entries]
        return 1 << int(np.argmax(sizes))

    def materialize(self, bits: int) -> BipartiteGraph:
        cached = self._cache.get(bits)
        if cached is not None:
            return cached
        empty = BipartiteGraph(self.pool.n_users, self.pool.n_items, (),
                               name=self.pool.name)
        graph = empty
        for index in iter_set_bits(bits):
            cluster: EdgeCluster = self.entries[index].payload
            graph = augment_edges(graph, self.pool, cluster)
        self._cache.put(bits, graph)
        return graph

    def output_size(self, bits: int) -> tuple[int, int]:
        edges = sum(len(self.entries[i].payload) for i in iter_set_bits(bits))
        _, dims = self.pool.shape
        return (edges, dims)

    def feature_vector(self, bits: int) -> np.ndarray:
        edges, _ = self.output_size(bits)
        stats = np.array([edges / max(1, self.pool.num_edges)])
        return np.concatenate([bits_to_array(bits, self.width), stats])

    def valid_flip(self, bits: int, index: int) -> bool:
        """Keep at least one active edge cluster (LightGCN needs edges)."""
        active = (bits >> index) & 1
        if active and bits.bit_count() <= 1:
            return False
        return True


@dataclass(frozen=True, slots=True)
class Transition:
    """One running-graph edge: (s, op, s')."""

    parent_bits: int
    child_bits: int
    op: str


class RunningGraph:
    """The DAG ``G_T = (V, δ)`` of spawned-and-valuated states."""

    def __init__(self) -> None:
        self.states: dict[int, State] = {}
        self.transitions: list[Transition] = []

    def add_state(self, state: State) -> None:
        """Record a state node (first writer wins for a given bitmap)."""
        self.states.setdefault(state.bits, state)

    def add_transition(self, parent: int, child: int, op: str) -> None:
        """Record one (s, op, s') edge."""
        self.transitions.append(Transition(parent, child, op))

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_valuated(self) -> int:
        return sum(1 for s in self.states.values() if s.valuated)

    def to_networkx(self):
        """Export as a networkx DiGraph for analysis/visualization."""
        import networkx as nx

        graph = nx.DiGraph()
        for bits, state in self.states.items():
            graph.add_node(bits, level=state.level, valuated=state.valuated)
        for tr in self.transitions:
            graph.add_edge(tr.parent_bits, tr.child_bits, op=tr.op)
        return graph

    def path_to(self, bits: int) -> list[tuple[int, str]]:
        """The operator path from a start state to ``bits``.

        Walks ``parent_bits`` links back to a root and returns
        ``[(state_bits, via), ...]`` in application order — the narrative
        provenance that pairs with :func:`repro.sql.state_to_sql`'s
        declarative form. Unknown states raise :class:`SearchError`.
        """
        if bits not in self.states:
            raise SearchError(f"state {bits:#x} is not in the running graph")
        path: list[tuple[int, str]] = []
        current: int | None = bits
        seen: set[int] = set()
        while current is not None:
            if current in seen:
                raise SearchError("parent links form a cycle")
            seen.add(current)
            state = self.states[current]
            path.append((current, state.via or "start"))
            current = state.parent_bits
            if current is not None and current not in self.states:
                break
        path.reverse()
        return path

    def to_dot(self, highlight: set[int] | None = None) -> str:
        """Graphviz text for the running graph.

        Skyline members passed in ``highlight`` render as doubled circles;
        un-valuated states are dashed. Paste the output into any dot
        renderer to inspect which reductions/augmentations a run explored.
        """
        highlight = highlight or set()
        lines = ["digraph G_T {", "  rankdir=TB;"]
        for bits, state in sorted(self.states.items()):
            attrs = [f'label="{bits:#x}\\nlevel {state.level}"']
            if bits in highlight:
                attrs.append("shape=doublecircle")
            if not state.valuated:
                attrs.append("style=dashed")
            lines.append(f'  n{bits} [{", ".join(attrs)}];')
        for tr in self.transitions:
            op = tr.op.replace('"', "'")
            lines.append(
                f'  n{tr.parent_bits} -> n{tr.child_bits} [label="{op}"];'
            )
        lines.append("}")
        return "\n".join(lines)


class Transducer:
    """OpGen over a search space: children differ from the parent in 1 bit."""

    def __init__(self, space: SearchSpace):
        self.space = space

    def spawn(
        self, bits: int, direction: Direction = "forward"
    ) -> Iterator[tuple[int, str]]:
        """Yield (child_bits, operator description).

        Forward = reductions (flip 1→0, from the universal end); backward =
        augmentations (flip 0→1, from the minimal end), exactly the revised
        OpGen of Algorithm 2.
        """
        if direction == "forward":
            candidates: Sequence[int] = list(iter_set_bits(bits))
            symbol = "⊖"
        elif direction == "backward":
            candidates = list(iter_clear_bits(bits, self.space.width))
            symbol = "⊕"
        else:
            raise SearchError(f"unknown direction {direction!r}")
        for index in candidates:
            if not self.space.valid_flip(bits, index):
                continue
            child = flip_bit(bits, index)
            yield child, f"{symbol}[{self.space.describe_entry(index)}]"
