"""Performance oracles, test records, and the MO-GBM surrogate estimator.

Section 2: an estimator ``E`` predicts a model's performance vector over a
new dataset in PTIME, "mak[ing] use of a set of historically observed
performance of M (denoted as T)". The default is a multi-output Gradient
Boosting model.

Three players live here:

* a **performance oracle** — the ground truth: trains the task's model on a
  materialized artifact and returns raw measure values (expensive);
* :class:`TestStore` — the paper's test set ``T``: every valuated
  (state, performance-vector) pair, keyed by bitmap;
* estimators — :class:`OracleEstimator` (always call the oracle; exact) and
  :class:`MOGBEstimator` (bootstrap a few oracle calls, then answer from a
  multi-output GB surrogate over state features; the paper's default ``E``).

Valuation fast path: every oracle invocation goes through
:func:`oracle_artifact`, which hands the oracle a columnar
:class:`~repro.relational.columns.MatrixView` (numpy slice of the
once-encoded universal table) when both sides support it — the oracle
advertises ``accepts_matrix`` (set by
:func:`repro.datalake.tasks.make_tabular_oracle`) and the space provides
``materialize_matrix`` (tabular spaces). Anything else — graph spaces,
UDF-wrapped spaces, custom oracles — falls back to the legacy
:meth:`~repro.core.transducer.SearchSpace.materialize` Table path, so the
fast path is an optimization, never a requirement.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..exceptions import EstimatorError
from ..ml.boosting import MultiOutputGradientBoosting
from ..ml.histogram_boosting import MultiOutputHistGradientBoosting
from ..obs import span
from ..rng import make_rng
from .measures import EPSILON_FLOOR, MeasureSet
from .transducer import SearchSpace

#: artifact (Table | BipartiteGraph | MatrixView) -> raw values by name.
PerformanceOracle = Callable[[Any], dict[str, float]]


def oracle_artifact(space: SearchSpace, oracle: PerformanceOracle, bits: int):
    """Materialize ``bits`` in the richest form ``oracle`` accepts.

    The fast paths need opt-in from both ends: an oracle declaring
    ``accepts_binned`` (its model trains on pre-binned codes) gets a
    :class:`~repro.relational.columns.MatrixView` with the state's uint8
    bin codes attached; ``accepts_matrix`` gets the plain float view.
    Everything else gets the compatibility
    :class:`~repro.relational.Table` / graph artifact.
    """
    fast = getattr(space, "materialize_matrix", None)
    if fast is not None:
        if getattr(oracle, "accepts_binned", False):
            return fast(bits, include_binned=True)
        if getattr(oracle, "accepts_matrix", False):
            return fast(bits)
    return space.materialize(bits)


@dataclass(slots=True)
class TestRecord:
    """One valuated test t = (M, D_s, P): state features + normalized P.

    ``source`` records provenance: "oracle" (ground truth from real model
    training) or "surrogate" (estimated). Verification passes upgrade
    surrogate records to oracle truth in place.
    """

    bits: int
    features: np.ndarray
    perf: np.ndarray
    source: str = "oracle"


class TestStore:
    """The historical test set ``T``, keyed by state bitmap."""

    def __init__(self) -> None:
        self._records: dict[int, TestRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, bits: int) -> bool:
        return bits in self._records

    def get(self, bits: int) -> TestRecord | None:
        """The record for a state bitmap, or ``None`` if never valuated."""
        return self._records.get(bits)

    def add(self, record: TestRecord) -> None:
        """Insert or overwrite the record for ``record.bits``."""
        self._records[record.bits] = record

    def records(self) -> list[TestRecord]:
        """All records, in insertion order."""
        return list(self._records.values())

    def n_oracle(self) -> int:
        """How many records carry ground truth (``source == "oracle"``)."""
        return sum(1 for r in self._records.values() if r.source == "oracle")

    def merge(self, other: TestStore) -> int:
        """Absorb another store's records; returns how many were taken.

        Oracle truth always wins: a record only replaces an existing one
        for the same bitmap when the existing record is a surrogate
        estimate and the incoming one is ground truth. This is what lets
        concurrent runs of one task pool their histories without an
        estimate ever shadowing a real training result.
        """
        taken = 0
        for record in other.records():
            existing = self._records.get(record.bits)
            if existing is None or (
                existing.source != "oracle" and record.source == "oracle"
            ):
                self._records[record.bits] = record
                taken += 1
        return taken

    # -- serialization hooks -----------------------------------------------------
    def to_payload(self, include_surrogate: bool = True) -> list[dict]:
        """JSON-serializable rows, one per record (bitmap as hex).

        ``include_surrogate=False`` keeps only ground-truth records — what
        the service's shared oracle store persists, so one scenario's
        surrogate estimates never leak into another's history as if they
        were observed performance.
        """
        return [
            {
                "bits": hex(record.bits),
                "features": [float(v) for v in record.features],
                "perf": [float(v) for v in record.perf],
                "source": record.source,
            }
            for record in self._records.values()
            if include_surrogate or record.source == "oracle"
        ]

    @classmethod
    def from_payload(
        cls, rows: Sequence[dict], n_measures: int | None = None
    ) -> TestStore:
        """Rebuild a store from :meth:`to_payload` rows.

        With ``n_measures`` given, every row's performance vector must have
        that length — loading history recorded under a different measure
        set would silently corrupt estimates otherwise.
        """
        store = cls()
        for row in rows:
            perf = np.asarray(row["perf"], dtype=float)
            if n_measures is not None and perf.shape != (n_measures,):
                raise EstimatorError(
                    f"record {row['bits']} has a {perf.shape[0]}-measure "
                    f"vector, expected {n_measures}"
                )
            store.add(
                TestRecord(
                    bits=int(row["bits"], 16),
                    features=np.asarray(row["features"], dtype=float),
                    perf=perf,
                    source=row.get("source", "oracle"),
                )
            )
        return store

    def perf_matrix(self) -> np.ndarray:
        """(n_tests, |P|) matrix of valuated performance vectors."""
        if not self._records:
            return np.zeros((0, 0))
        return np.stack([r.perf for r in self._records.values()])

    def feature_matrix(self) -> np.ndarray:
        """(n_tests, n_features) matrix of state features."""
        if not self._records:
            return np.zeros((0, 0))
        return np.stack([r.features for r in self._records.values()])


class Estimator(abc.ABC):
    """Valuates a state bitmap into a normalized |P|-vector."""

    def __init__(self, measures: MeasureSet, store: TestStore | None = None):
        self.measures = measures
        self.store = store if store is not None else TestStore()
        self.oracle_calls = 0
        self.surrogate_calls = 0

    @property
    def total_valuations(self) -> int:
        """States valuated so far — the paper's budget counter N."""
        return self.oracle_calls + self.surrogate_calls

    def valuate(self, bits: int, space: SearchSpace) -> np.ndarray:
        """Return (possibly estimated) normalized performance for a state.

        Already-recorded tests are loaded from T rather than re-valuated
        (running step 2(b) of Section 3).
        """
        existing = self.store.get(bits)
        if existing is not None:
            return existing.perf
        return self._valuate_new(bits, space)

    def valuate_batch(
        self, bits_list: Sequence[int], space: SearchSpace
    ) -> np.ndarray:
        """Valuate many states at once; row ``i`` answers ``bits_list[i]``.

        The test store is the by-bitmap memo: already-recorded states are
        answered from T, in-batch duplicates are valuated once, and only
        the genuinely new bitmaps reach :meth:`_valuate_new_batch` (which
        surrogate estimators vectorize into one ``predict`` per refit
        window). Results are bit-identical to calling :meth:`valuate`
        per state in order.
        """
        bits_list = list(bits_list)
        if not bits_list:
            return np.zeros((0, len(self.measures)))
        known: dict[int, np.ndarray] = {}
        missing: list[int] = []
        for bits in bits_list:
            if bits in known or bits in missing:
                continue
            record = self.store.get(bits)
            if record is not None:
                known[bits] = record.perf
            else:
                missing.append(bits)
        for bits, perf in zip(missing, self._valuate_new_batch(missing, space)):
            known[bits] = perf
        return np.stack([known[bits] for bits in bits_list])

    @abc.abstractmethod
    def _valuate_new(self, bits: int, space: SearchSpace) -> np.ndarray:
        """Valuate a state not present in T."""

    def _valuate_new_batch(
        self, missing: Sequence[int], space: SearchSpace
    ) -> list[np.ndarray]:
        """Valuate distinct states not present in T, in order.

        Default: loop :meth:`_valuate_new`. Estimators with a vectorized
        path (the MO-GBM surrogate) override this.
        """
        return [self._valuate_new(bits, space) for bits in missing]


class OracleEstimator(Estimator):
    """Exact valuation: every state triggers real model training."""

    def __init__(
        self,
        oracle: PerformanceOracle,
        measures: MeasureSet,
        store: TestStore | None = None,
    ):
        super().__init__(measures, store)
        self.oracle = oracle

    def _valuate_new(self, bits: int, space: SearchSpace) -> np.ndarray:
        raw = self.oracle(oracle_artifact(space, self.oracle, bits))
        perf = self.measures.normalize_raw(raw)
        self.oracle_calls += 1
        self.store.add(TestRecord(bits, space.feature_vector(bits), perf))
        return perf


class MOGBEstimator(Estimator):
    """The paper's default ``E``: one multi-output GB surrogate.

    Bootstrap with a handful of oracle valuations (random walks away from
    the universal state), then answer in a single ``predict`` call per
    state. The surrogate refits lazily whenever enough new oracle truth has
    accumulated.

    ``surrogate`` picks the backbone: ``"gbm"`` (exact-split multi-output
    gradient boosting, the paper default) or ``"hist"`` (histogram
    boosting — bins the feature matrix once per refit window and finds
    splits in O(bins), cheaper on wide feature vectors).
    """

    def __init__(
        self,
        oracle: PerformanceOracle,
        measures: MeasureSet,
        store: TestStore | None = None,
        n_bootstrap: int = 24,
        refit_every: int = 16,
        n_estimators: int = 40,
        max_depth: int = 3,
        surrogate: str = "gbm",
        seed: int = 0,
    ):
        super().__init__(measures, store)
        if surrogate not in ("gbm", "hist"):
            raise EstimatorError(
                f"unknown surrogate backbone {surrogate!r}; "
                "expected 'gbm' or 'hist'"
            )
        self.oracle = oracle
        self.n_bootstrap = int(n_bootstrap)
        self.refit_every = int(refit_every)
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.surrogate = surrogate
        self.seed = int(seed)
        self._surrogate: (
            MultiOutputGradientBoosting | MultiOutputHistGradientBoosting | None
        ) = None
        self._records_at_fit = 0
        self._bootstrapped = False

    # -- bootstrap ----------------------------------------------------------------
    def bootstrap(self, space: SearchSpace) -> None:
        """Seed T with oracle valuations of informative states.

        Mix of (a) the two seeds (universal, backward), (b) *single-flip*
        states — the surrogate sees the marginal effect of individual bitmap
        entries, which is what ranks level-1 reducts correctly — and (c)
        random multi-flip walks for interaction coverage.
        """
        rng = make_rng(self.seed)
        width = space.width
        targets = [space.universal_bits, space.backward_bits()]
        # (b) single flips of a random entry subset, budgeted at ~60%.
        n_single = max(1, int(0.6 * max(self.n_bootstrap - 2, 0)))
        entry_order = rng.permutation(width)
        for index in entry_order[:n_single]:
            index = int(index)
            if space.valid_flip(space.universal_bits, index):
                targets.append(space.universal_bits ^ (1 << index))
        # (c) random walks for the rest.
        while len(targets) < self.n_bootstrap:
            bits = space.universal_bits
            n_flips = int(rng.integers(2, max(3, width // 2)))
            for _ in range(n_flips):
                index = int(rng.integers(width))
                if space.valid_flip(bits, index):
                    bits ^= 1 << index
            targets.append(bits)
        with span("bootstrap", n_targets=len(targets)):
            for bits in dict.fromkeys(targets):  # dedupe, keep order
                if bits in self.store:
                    continue
                self.oracle_truth(bits, space)
        self._bootstrapped = True
        self._refit(force=True)

    def oracle_truth(self, bits: int, space: SearchSpace) -> np.ndarray:
        """Force a ground-truth valuation (counts as an oracle call).

        Surrogate-estimated records are upgraded to oracle truth in place,
        which also improves subsequent surrogate refits.
        """
        existing = self.store.get(bits)
        if existing is not None and existing.source == "oracle":
            return existing.perf
        raw = self.oracle(oracle_artifact(space, self.oracle, bits))
        perf = self.measures.normalize_raw(raw)
        self.oracle_calls += 1
        self.store.add(TestRecord(bits, space.feature_vector(bits), perf))
        return perf

    # -- surrogate ----------------------------------------------------------------
    def _refit(self, force: bool = False) -> None:
        n = len(self.store)
        if n < 3:
            raise EstimatorError(
                "too few test records to fit the surrogate; bootstrap first"
            )
        if not force and self._surrogate is not None:
            if n - self._records_at_fit < self.refit_every:
                return
        with span("oracle-fit", n_records=n):
            backbone = (
                MultiOutputHistGradientBoosting
                if self.surrogate == "hist"
                else MultiOutputGradientBoosting
            )
            self._surrogate = backbone(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                seed=self.seed,
            )
            self._surrogate.fit(
                self.store.feature_matrix(), self.store.perf_matrix()
            )
        self._records_at_fit = n

    def _ensure_bootstrapped(self, space: SearchSpace) -> None:
        if self._bootstrapped:
            return
        # Warm start: a pre-loaded historical store T with enough truth
        # already covers what bootstrapping would sample (Section 2's
        # "historically observed performance of M").
        if self.store.n_oracle() >= max(3, self.n_bootstrap):
            self._bootstrapped = True
            self._refit(force=True)
        else:
            self.bootstrap(space)

    def _valuate_new(self, bits: int, space: SearchSpace) -> np.ndarray:
        return self._valuate_new_batch([bits], space)[0]

    def _valuate_new_batch(
        self, missing: Sequence[int], space: SearchSpace
    ) -> list[np.ndarray]:
        """Vectorized surrogate path: one feature matrix and one ``predict``
        per refit window.

        The refit schedule (every ``refit_every`` new records) is preserved
        by chunking at the same boundaries the per-state path would hit, so
        batch answers are bit-identical to sequential ones.
        """
        if not missing:
            return []
        self._ensure_bootstrapped(space)
        results: dict[int, np.ndarray] = {}
        fresh: list[int] = []
        for bits in missing:
            record = self.store.get(bits)  # bootstrap may have valuated it
            if record is not None:
                results[bits] = record.perf
            else:
                fresh.append(bits)
        index = 0
        while index < len(fresh):
            self._refit()
            room = self.refit_every - (len(self.store) - self._records_at_fit)
            chunk = fresh[index:index + max(1, room)]
            features = space.feature_matrix(chunk)
            predictions = np.clip(
                self._surrogate.predict(features), EPSILON_FLOOR, 1.0
            )
            for bits, row, perf in zip(chunk, features, predictions):
                self.surrogate_calls += 1
                self.store.add(TestRecord(bits, row, perf, source="surrogate"))
                results[bits] = perf
            index += len(chunk)
        return [results[bits] for bits in missing]

    # -- introspection ----------------------------------------------------------------
    def surrogate_mse(self, space: SearchSpace, probe_bits: list[int]) -> float:
        """Mean squared surrogate error against fresh oracle truth.

        Used by the benchmarks to reproduce the paper's estimator-quality
        claim (MO-GBM predicting accuracy with MSE ≈ 3e-4 on T1).
        """
        if self._surrogate is None:
            raise EstimatorError("surrogate not fitted yet")
        errors = []
        for bits in probe_bits:
            features = space.feature_vector(bits)
            predicted = np.clip(
                self._surrogate.predict(features[None, :])[0], EPSILON_FLOOR, 1.0
            )
            raw = self.oracle(oracle_artifact(space, self.oracle, bits))
            truth = self.measures.normalize_raw(raw)
            errors.append(np.mean((predicted - truth) ** 2))
        return float(np.mean(errors))
