"""Diversification of skyline sets (Section 5.4, Algorithm 3).

``div(D_F) = Σ_{i<j} dis(D_i, D_j)`` with

    dis(D_i, D_j) = α · (1 − cos(s_i.L, s_j.L)) / 2
                  + (1 − α) · euc(t_i.P, t_j.P) / euc_m

— bitmap (content) dissimilarity blended with performance-vector distance,
normalized by the maximum Euclidean distance ``euc_m`` observed among the
historical performances in T. ``div`` is monotone submodular (Appendix A.3),
so the greedy select-and-replace stream policy of Algorithm 3 keeps a k-set
within ¼ of the optimal diversified ε-skyline at each level (Lemma 5).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SearchError
from ..rng import make_rng
from .state import State, bits_to_array


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine of two bitmap vectors; 1.0 when either is all-zero (identical
    emptiness is maximal overlap for our purposes)."""
    norm_a, norm_b = float(np.linalg.norm(a)), float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 1.0
    # clip: float error can push |cos| a hair past 1, which would make
    # distances negative
    return float(np.clip(np.dot(a, b) / (norm_a * norm_b), -1.0, 1.0))


def state_distance(
    s_i: State, s_j: State, width: int, alpha: float, euc_max: float
) -> float:
    """The paper's dis(D_i, D_j) for two valuated states."""
    if not 0.0 <= alpha <= 1.0:
        raise SearchError("alpha must be in [0, 1]")
    if s_i.perf is None or s_j.perf is None:
        raise SearchError("diversification needs valuated states")
    content = (1.0 - cosine_similarity(
        bits_to_array(s_i.bits, width), bits_to_array(s_j.bits, width)
    )) / 2.0
    euc = float(np.linalg.norm(s_i.perf - s_j.perf))
    perf = euc / euc_max if euc_max > 0 else 0.0
    return alpha * content + (1.0 - alpha) * perf


def diversification_score(
    states: list[State], width: int, alpha: float, euc_max: float
) -> float:
    """div(D_F): sum of pairwise distances."""
    total = 0.0
    for i in range(len(states) - 1):
        for j in range(i + 1, len(states)):
            total += state_distance(states[i], states[j], width, alpha, euc_max)
    return total


def max_euclidean(perfs: np.ndarray) -> float:
    """euc_m: the max pairwise Euclidean distance among historical P in T."""
    if perfs.shape[0] < 2:
        return 1.0
    best = 0.0
    for i in range(perfs.shape[0] - 1):
        diffs = perfs[i + 1 :] - perfs[i]
        best = max(best, float(np.max(np.linalg.norm(diffs, axis=1))))
    return best if best > 0 else 1.0


def greedy_diversify(
    candidates: list[State],
    k: int,
    width: int,
    alpha: float,
    euc_max: float,
    seed: int = 0,
) -> list[State]:
    """Algorithm 3: the level-wise diversification step.

    Returns the input unchanged when it already fits in ``k``; otherwise
    seeds a random k-subset and greedily applies the single-swap
    replacement with the highest marginal gain until no swap improves
    ``div`` (the ¼-approximation policy of Lemma 5).
    """
    if k < 1:
        raise SearchError("k must be >= 1")
    if len(candidates) <= k:
        return list(candidates)
    rng = make_rng(seed)
    chosen_idx = sorted(
        int(i) for i in rng.choice(len(candidates), size=k, replace=False)
    )
    chosen = [candidates[i] for i in chosen_idx]
    score = diversification_score(chosen, width, alpha, euc_max)
    improved = True
    while improved:
        improved = False
        for slot in range(len(chosen)):
            for candidate in candidates:
                if any(candidate.bits == s.bits for s in chosen):
                    continue
                trial = chosen[:slot] + [candidate] + chosen[slot + 1 :]
                trial_score = diversification_score(trial, width, alpha, euc_max)
                if trial_score > score + 1e-12:
                    chosen, score = trial, trial_score
                    improved = True
    return chosen
