"""Performance measures, normalization, and user-specified ranges.

Section 2 of the paper fixes the conventions this module implements:

1. every measure is *normalized to minimize* with range (0, 1] — measures to
   be maximized (accuracy, F1, NDCG, ...) are inverted (``1 - value``);
2. each measure optionally carries a range ``[p_l, p_u] ⊆ (0, 1]``: the
   upper bound is a tolerance used for early skipping during search, the
   strictly positive lower bound makes the ε-grid positions
   ``log_{1+ε}(p / p_l)`` well defined (Equation 1);
3. cost measures (training time) normalize raw values against a cap, e.g.
   Example 2 maps "no more than 1800 seconds" to ``T_train ≤ 0.5`` under a
   3600-second cap.

:class:`Measure` captures one indicator; :class:`MeasureSet` is the ordered
collection ``P`` with the decisive measure last (Section 5.1: "By default,
we set the last measure in P as a decisive measure").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from ..exceptions import MeasureError

#: Smallest normalized value; keeps measures strictly inside (0, 1].
EPSILON_FLOOR = 1e-3

#: How a raw metric value becomes a normalized minimize-me value.
KIND_ERROR = "error"  # already a [0, cap] error → divide by cap
KIND_SCORE = "score"  # a [0, 1] score to maximize → 1 - value
KIND_COST = "cost"  # non-negative cost → divide by cap
_VALID_KINDS = (KIND_ERROR, KIND_SCORE, KIND_COST)


@dataclass(frozen=True, slots=True)
class Measure:
    """One user-defined performance measure.

    ``name`` must match a key produced by the task's performance oracle.
    ``lower``/``upper`` are the paper's ``p_l``/``p_u`` in normalized space.
    ``cap`` rescales raw errors/costs before clipping.
    """

    name: str
    kind: str = KIND_SCORE
    cap: float = 1.0
    lower: float = EPSILON_FLOOR
    upper: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise MeasureError(
                f"measure {self.name!r}: kind must be one of {_VALID_KINDS}"
            )
        if self.cap <= 0:
            raise MeasureError(f"measure {self.name!r}: cap must be positive")
        if not 0.0 < self.lower <= self.upper <= 1.0:
            raise MeasureError(
                f"measure {self.name!r}: need 0 < lower <= upper <= 1, got "
                f"[{self.lower}, {self.upper}]"
            )

    def normalize(self, raw: float) -> float:
        """Map a raw oracle value into (0, 1], minimize-me orientation.

        Scores are inverted after rescaling by ``cap`` (cap=1 for metrics
        already in [0, 1]; unbounded maximize-me scores like Fisher/MI use a
        task-calibrated cap); errors and costs divide by ``cap``.
        """
        if self.kind == KIND_SCORE:
            value = 1.0 - float(raw) / self.cap
        else:
            value = float(raw) / self.cap
        return float(np.clip(value, EPSILON_FLOOR, 1.0))

    def denormalize(self, value: float) -> float:
        """Inverse of :meth:`normalize` (up to clipping)."""
        if self.kind == KIND_SCORE:
            return (1.0 - float(value)) * self.cap
        return float(value) * self.cap

    def within_bounds(self, value: float) -> bool:
        """Is a normalized value inside the user range [p_l, p_u]?"""
        return self.lower <= value <= self.upper

    @property
    def ratio(self) -> float:
        """``p_u / p_l`` — the per-measure factor in the paper's ``p_m``."""
        return self.upper / self.lower


class MeasureSet:
    """The ordered measure collection ``P`` (decisive measure last)."""

    __slots__ = ("_measures", "_index")

    def __init__(self, measures: Iterable[Measure]):
        measures = tuple(measures)
        if not measures:
            raise MeasureError("P must contain at least one measure")
        names = [m.name for m in measures]
        if len(set(names)) != len(names):
            raise MeasureError(f"duplicate measure names: {names}")
        self._measures = measures
        self._index = {m.name: i for i, m in enumerate(measures)}

    # -- protocol -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._measures)

    def __iter__(self):
        return iter(self._measures)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Measure:
        if name not in self._index:
            raise MeasureError(f"unknown measure {name!r}; have {self.names}")
        return self._measures[self._index[name]]

    def __repr__(self) -> str:
        return f"MeasureSet({', '.join(self.names)})"

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self._measures)

    @property
    def decisive(self) -> Measure:
        """The decisive measure ``p_d`` (last by the paper's default)."""
        return self._measures[-1]

    @property
    def grid_measures(self) -> tuple[Measure, ...]:
        """The first |P|-1 measures — the ε-grid dimensions of Equation 1."""
        return self._measures[:-1]

    def index_of(self, name: str) -> int:
        """Position of measure ``name`` within P."""
        if name not in self._index:
            raise MeasureError(f"unknown measure {name!r}; have {self.names}")
        return self._index[name]

    # -- vector helpers ---------------------------------------------------------------
    def normalize_raw(self, raw: Mapping[str, float]) -> np.ndarray:
        """Normalize an oracle's raw measure dict into a |P|-vector."""
        missing = [m.name for m in self._measures if m.name not in raw]
        if missing:
            raise MeasureError(f"oracle omitted measures: {missing}")
        return np.array([m.normalize(raw[m.name]) for m in self._measures])

    def as_dict(self, vector: np.ndarray) -> dict[str, float]:
        """Name → normalized value mapping for a |P|-vector."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (len(self),):
            raise MeasureError(
                f"vector shape {vector.shape} != ({len(self)},)"
            )
        return {m.name: float(v) for m, v in zip(self._measures, vector)}

    def within_upper_bounds(self, vector: np.ndarray) -> bool:
        """UPareto's early-skip test: every value ≤ its p_u (Alg. 1 line 23)."""
        return all(
            float(v) <= m.upper for m, v in zip(self._measures, vector)
        )

    def within_ranges(self, vector: np.ndarray) -> bool:
        """Full skyline-membership range test (both p_l and p_u)."""
        return all(
            m.within_bounds(float(v)) for m, v in zip(self._measures, vector)
        )

    def max_ratio(self) -> float:
        """``p_m = max p_u / p_l`` over P (cost analysis, Theorem 1)."""
        return max(m.ratio for m in self._measures)


# -- terse constructors for the paper's common measures -----------------------------


def score_measure(
    name: str,
    lower: float = EPSILON_FLOOR,
    upper: float = 1.0,
    cap: float = 1.0,
) -> Measure:
    """A maximize-me score (accuracy, F1, AUC, NDCG, R², Fisher, MI, ...).

    ``cap`` rescales unbounded scores before the ``1 - value`` inversion.
    """
    return Measure(name, kind=KIND_SCORE, lower=lower, upper=upper, cap=cap)


def error_measure(
    name: str, cap: float = 1.0, lower: float = EPSILON_FLOOR, upper: float = 1.0
) -> Measure:
    """A minimize-me error normalized by ``cap`` (RMSE, MSE, MAE, ...)."""
    return Measure(name, kind=KIND_ERROR, cap=cap, lower=lower, upper=upper)


def cost_measure(
    name: str, cap: float, lower: float = EPSILON_FLOOR, upper: float = 1.0
) -> Measure:
    """A resource cost normalized by ``cap`` (training time, memory, ...)."""
    return Measure(name, kind=KIND_COST, cap=cap, lower=lower, upper=upper)
