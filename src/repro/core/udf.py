"""Task-specific UDF enrichment of the operator set.

Section 3 (Transitions, remarks): "In practice, the operators can be
enriched by task-specific UDFs that perform additional data imputation, or
pruning operations, to further improve the quality of datasets." This
module supplies that hook:

* :class:`UDF` — a named, documented ``Table -> Table`` transform;
* :class:`UDFRegistry` — a catalogue of UDFs (with the built-ins below
  pre-registered in :data:`DEFAULT_REGISTRY`);
* built-ins: mean/mode imputation, duplicate-row pruning, IQR outlier
  clipping, and all-null column pruning;
* :class:`UDFSearchSpace` — wraps any search space so every materialized
  state flows through a UDF pipeline before the model/estimator sees it.
  The bitmap vocabulary (and hence the running graph) is unchanged; only
  the artifact each state denotes is refined, exactly the paper's framing
  of UDFs as quality refinement rather than new transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import SearchError, TableError
from ..relational.table import Table
from .transducer import SearchSpace


@dataclass(frozen=True, slots=True)
class UDF:
    """A named table-to-table transform with a one-line description."""

    name: str
    fn: Callable[[Table], Table]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SearchError("a UDF needs a non-empty name")

    def __call__(self, table: Table) -> Table:
        out = self.fn(table)
        if not isinstance(out, Table):
            raise SearchError(
                f"UDF {self.name!r} returned {type(out).__name__}, not Table"
            )
        return out


class UDFRegistry:
    """A catalogue of UDFs, addressable by name."""

    def __init__(self, udfs: Iterable[UDF] = ()):
        self._udfs: dict[str, UDF] = {}
        for udf in udfs:
            self.register(udf)

    def register(self, udf: UDF) -> UDF:
        """Add a UDF under its name; duplicate names are an error."""
        if udf.name in self._udfs:
            raise SearchError(f"UDF {udf.name!r} already registered")
        self._udfs[udf.name] = udf
        return udf

    def __contains__(self, name: object) -> bool:
        return name in self._udfs

    def __getitem__(self, name: str) -> UDF:
        try:
            return self._udfs[name]
        except KeyError:
            raise SearchError(
                f"unknown UDF {name!r}; registered: {sorted(self._udfs)}"
            ) from None

    def __iter__(self) -> Iterator[UDF]:
        return iter(self._udfs.values())

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._udfs))

    def pipeline(self, names: Sequence[str]) -> list[UDF]:
        """Resolve an ordered list of UDF names into callables."""
        return [self[name] for name in names]


# ---------------------------------------------------------------------------
# Built-in UDFs
# ---------------------------------------------------------------------------


def impute_mean(table: Table, exclude: Sequence[str] = ()) -> Table:
    """Fill numeric nulls with the column mean (no-op on all-null columns)."""
    skip = set(exclude)
    out = table
    for attr in table.schema:
        if not attr.is_numeric or attr.name in skip:
            continue
        values = out._column_ref(attr.name)
        known = [float(v) for v in values if v is not None]
        if not known or len(known) == len(values):
            continue
        mean = float(np.mean(known))
        out = out.replace_column(
            attr.name, [mean if v is None else v for v in values]
        )
    return out


def impute_mode(table: Table, exclude: Sequence[str] = ()) -> Table:
    """Fill categorical nulls with the most frequent value (ties: smallest
    by repr, for determinism)."""
    skip = set(exclude)
    out = table
    for attr in table.schema:
        if not attr.is_categorical or attr.name in skip:
            continue
        values = out._column_ref(attr.name)
        counts: dict[Any, int] = {}
        for v in values:
            if v is not None:
                counts[v] = counts.get(v, 0) + 1
        if not counts or all(v is not None for v in values):
            continue
        mode = min(counts, key=lambda v: (-counts[v], repr(v)))
        out = out.replace_column(
            attr.name, [mode if v is None else v for v in values]
        )
    return out


def drop_duplicate_rows(table: Table) -> Table:
    """Prune exact duplicate tuples (nulls compare equal)."""
    return table.distinct()


def clip_outliers(table: Table, k: float = 3.0, exclude: Sequence[str] = ()) -> Table:
    """Winsorize numeric columns at ``median ± k·IQR``.

    Pruning-flavoured quality refinement: extreme cells are clamped, not
    removed, so row counts (and joins downstream) are unaffected.
    """
    if k <= 0:
        raise TableError("clip_outliers needs k > 0")
    skip = set(exclude)
    out = table
    for attr in table.schema:
        if not attr.is_numeric or attr.name in skip:
            continue
        values = out._column_ref(attr.name)
        known = np.array([float(v) for v in values if v is not None])
        if known.size < 4:
            continue
        q1, median, q3 = np.percentile(known, [25, 50, 75])
        iqr = q3 - q1
        if iqr <= 0:
            continue
        low, high = median - k * iqr, median + k * iqr
        clipped = [
            None if v is None else float(min(max(float(v), low), high))
            for v in values
        ]
        if any(
            (a is not None) and a != b for a, b in zip(clipped, values)
        ):
            out = out.replace_column(attr.name, clipped)
    return out


def drop_all_null_columns(table: Table) -> Table:
    """Prune attributes whose every cell is null (adom_s(A) = ∅)."""
    dead = [
        n
        for n in table.schema.names
        if table.num_rows > 0
        and all(v is None for v in table._column_ref(n))
    ]
    return table.drop_columns(dead) if dead else table


def make_default_registry() -> UDFRegistry:
    """A fresh registry holding the built-in UDFs."""
    return UDFRegistry(
        [
            UDF("impute_mean", impute_mean,
                "fill numeric nulls with the column mean"),
            UDF("impute_mode", impute_mode,
                "fill categorical nulls with the most frequent value"),
            UDF("drop_duplicate_rows", drop_duplicate_rows,
                "remove exact duplicate tuples"),
            UDF("clip_outliers", clip_outliers,
                "winsorize numeric columns at median ± 3·IQR"),
            UDF("drop_all_null_columns", drop_all_null_columns,
                "remove attributes with empty active domains"),
        ]
    )


#: The shared default registry (importers may register additional UDFs).
DEFAULT_REGISTRY = make_default_registry()


# ---------------------------------------------------------------------------
# Search-space wrapper
# ---------------------------------------------------------------------------


class UDFSearchSpace(SearchSpace):
    """A search space whose materialized states pass through a UDF pipeline.

    Wraps an inner space without touching its bitmap vocabulary: states,
    transitions, and the running graph are identical; only ``materialize``
    (and the size/statistics that depend on it) see refined tables. The
    pipeline must be deterministic for the search to remain a fixed
    deterministic process (Section 2).
    """

    def __init__(self, inner: SearchSpace, pipeline: Sequence[UDF]):
        if not pipeline:
            raise SearchError("UDFSearchSpace needs at least one UDF")
        self.inner = inner
        self.pipeline = tuple(pipeline)
        self.entries = inner.entries

    def _apply(self, table: Table) -> Table:
        for udf in self.pipeline:
            table = udf(table)
        return table

    # -- SearchSpace API (delegation + refinement) ----------------------------------
    def backward_bits(self) -> int:
        return self.inner.backward_bits()

    def materialize(self, bits: int) -> Table:
        return self._apply(self.inner.materialize(bits))

    def output_size(self, bits: int) -> tuple[int, int]:
        return self.materialize(bits).shape

    def feature_vector(self, bits: int) -> np.ndarray:
        return self.inner.feature_vector(bits)

    def valid_flip(self, bits: int, index: int) -> bool:
        return self.inner.valid_flip(bits, index)

    def describe_entry(self, index: int) -> str:
        """Delegate entry labels to the wrapped space."""
        return self.inner.describe_entry(index)

    @property
    def pipeline_names(self) -> tuple[str, ...]:
        return tuple(udf.name for udf in self.pipeline)
