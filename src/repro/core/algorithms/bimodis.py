"""BiMODis — bi-directional search with correlation-based pruning (Alg. 2).

Two frontiers advance level-by-level: a *forward* frontier from the
universal state applying Reducts, and a *backward* frontier from the
BackSt seed applying Augments. Both feed the same UPareto ε-grid. The
search terminates when the frontiers meet (a path is formed), the budget N
is exhausted, maxl levels are done, or both frontiers die out.

Pruning (Section 5.3 / Lemma 4): before valuating a spawned state, BiMODis
partially valuates it with the configuration's *cheap oracle* (measures
computable from the output size alone, e.g. a training-cost proxy), infers
parameterized ranges ``[p̂_l, p̂_u]`` for the remaining measures from the
correlation graph G_C over the test set T, and discards the state if an
already-kept skyline state parameterized-ε-dominates even its optimistic
bound. ``NOBiMODis`` is the published ablation: identical search, pruning
off.
"""

from __future__ import annotations

import numpy as np

from ...obs import span
from ..config import Configuration
from ..correlation import CorrelationGraph, infer_ranges
from ..state import State
from .base import SkylineAlgorithm


class BiMODis(SkylineAlgorithm):
    """Algorithm 2 (full version: Algorithm 4 in the appendix)."""

    name = "BiMODis"

    def __init__(
        self,
        config: Configuration,
        epsilon: float = 0.1,
        budget: int = 200,
        max_level: int = 6,
        pruning: bool = True,
        theta: float = 0.8,
        corr_refresh: int = 8,
    ):
        super().__init__(config, epsilon=epsilon, budget=budget, max_level=max_level)
        self.pruning = pruning
        self.theta = theta
        self.corr_refresh = int(corr_refresh)
        self.corr = CorrelationGraph(config.measures, theta=theta)
        self._since_corr_update = 0

    # -- pruning ------------------------------------------------------------------
    def _cheap_known(self, bits: int) -> dict[int, float]:
        """Partially valuate a state with the cheap oracle (if any)."""
        if self.config.cheap_oracle is None:
            return {}
        raw = self.config.cheap_oracle(bits)
        known: dict[int, float] = {}
        for name, value in raw.items():
            if name in self.config.measures:
                measure = self.config.measures[name]
                known[self.config.measures.index_of(name)] = measure.normalize(value)
        return known

    def _maybe_refresh_corr(self) -> None:
        if self._since_corr_update >= self.corr_refresh or self._since_corr_update == 0:
            self.corr.update(self.config.estimator.store)
            self._since_corr_update = 1
        else:
            self._since_corr_update += 1

    def _can_prune(self, bits: int) -> bool:
        """canPrune of Algorithm 2: Lemma 4 against the kept skyline states.

        Hot path: the per-anchor case analysis of
        :func:`monotone_bound_excludes` reduces, for fully-valuated anchors,
        to one vectorized comparison against the candidate's optimistic
        bound ``p̂_l`` — prune iff some anchor a has
        ``a ≤ (1+ε)·p̂_l`` componentwise.
        """
        if not self.pruning:
            return False
        if len(self.config.estimator.store) < 8:
            return False  # ranges would be too loose to ever exclude
        anchors = self.grid.states
        if not anchors:
            return False
        known = self._cheap_known(bits)
        if not known:
            return False
        self._maybe_refresh_corr()
        low, _high = infer_ranges(
            known, self.config.measures, self.corr, self.config.estimator.store
        )
        anchor_matrix = np.stack([s.perf for s in anchors])
        ceiling = (1.0 + self.epsilon) * low + 1e-12
        return bool(np.any(np.all(anchor_matrix <= ceiling, axis=1)))

    # -- search -------------------------------------------------------------------
    def _seed(self, bits: int, via: str) -> State:
        state = State(bits=bits, level=0, via=via)
        self.graph.add_state(state)
        self._valuate(state)
        self.grid.update(state)
        return state

    def _expand(
        self,
        frontier: list[State],
        direction: str,
        visited: set[int],
    ) -> list[State]:
        next_frontier: list[State] = []
        for parent in frontier:
            if self.budget_exhausted:
                self.report.terminated_by = "budget"
                return next_frontier
            for child_bits, op in self.transducer.spawn(parent.bits, direction):
                if child_bits in visited:
                    continue
                visited.add(child_bits)
                self.report.n_spawned += 1
                if self._can_prune(child_bits):
                    self.report.n_pruned += 1
                    continue
                child = State(
                    bits=child_bits,
                    level=parent.level + 1,
                    via=op,
                    parent_bits=parent.bits,
                )
                self.graph.add_state(child)
                self.graph.add_transition(parent.bits, child_bits, op)
                self._valuate(child)
                self.grid.update(child)
                next_frontier.append(child)
                if self.budget_exhausted:
                    self.report.terminated_by = "budget"
                    return next_frontier
        return next_frontier

    def _end_of_level(self, level: int) -> None:
        """Hook for subclasses (DivMODis diversifies here)."""

    def _search(self) -> None:
        space = self.config.space
        forward_seed = self._seed(space.universal_bits, "s_U")
        backward_bits = space.backward_bits()
        visited_f: set[int] = {forward_seed.bits}
        visited_b: set[int] = set()
        frontier_f = [forward_seed]
        frontier_b: list[State] = []
        if backward_bits != forward_seed.bits:
            backward_seed = self._seed(backward_bits, "s_b")
            visited_b.add(backward_bits)
            frontier_b = [backward_seed]
        for level in range(self.max_level):
            if self.budget_exhausted:
                self.report.terminated_by = "budget"
                break
            with span("level", level=level + 1) as level_span:
                frontier_f = self._expand(frontier_f, "forward", visited_f)
                frontier_b = self._expand(frontier_b, "backward", visited_b)
                level_span.set_attr(
                    frontier_forward=len(frontier_f),
                    frontier_backward=len(frontier_b),
                )
            self.report.n_levels = level + 1
            self._end_of_level(level)
            self._emit_level_progress()
            if visited_f & visited_b:
                self.report.terminated_by = "frontiers_met"
                break
            if not frontier_f and not frontier_b:
                self.report.terminated_by = "exhausted"
                break
        self.report.extras["pruned"] = self.report.n_pruned
        self.report.extras["correlation_edges"] = self.corr.edges()


class NOBiMODis(BiMODis):
    """BiMODis with correlation-based pruning disabled (paper's ablation)."""

    name = "NOBiMODis"

    def __init__(
        self,
        config: Configuration,
        epsilon: float = 0.1,
        budget: int = 200,
        max_level: int = 6,
    ):
        super().__init__(
            config,
            epsilon=epsilon,
            budget=budget,
            max_level=max_level,
            pruning=False,
        )
