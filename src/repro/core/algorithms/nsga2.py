"""NSGA-II over bitmap states — the evolutionary alternative of Section 5.4.

The paper's Remarks position MODis against multi-objective evolutionary
search: "Alternatives ... such as NSGA-II [5] ... rely on costly stochastic
processes (e.g., mutation and crossover) and may require extensive
parameter tuning. In contrast, MODis is training and tuning free."

This module implements that comparator faithfully (Deb et al., 2002) on the
same search space and estimator so the ablation benchmark can measure the
claim: fast non-dominated sorting, crowding distance, binary tournament
selection, uniform crossover and per-bit mutation (respecting the space's
``valid_flip`` constraints), elitist (μ+λ) survival.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import SearchError
from ...obs import current_emitter, emit, emit_partial, events_enabled
from ...rng import make_rng
from ..state import State
from .base import SkylineAlgorithm


def non_dominated_sort(perfs: np.ndarray) -> list[list[int]]:
    """Deb's fast non-dominated sort: list of fronts (index lists).

    The ``O(n²·d)`` pairwise dominance comparisons are one broadcasted
    numpy expression (strict dominance, no tie tolerance — NSGA-II's
    definition); the front peeling then walks the precomputed matrix in
    the same order as the original per-pair loop, so front membership
    *and ordering* — which feed tournament selection and therefore the
    whole evolution — are bit-identical to the scalar implementation.
    """
    n = perfs.shape[0]
    if n == 0:
        return []
    # dom[i, j] ⇔ individual i dominates individual j.
    le = np.all(perfs[:, None, :] <= perfs[None, :, :], axis=-1)
    lt = np.any(perfs[:, None, :] < perfs[None, :, :], axis=-1)
    dom = le & lt
    dominates_sets = [np.flatnonzero(dom[i]) for i in range(n)]
    dominated_count = dom.sum(axis=0).astype(int)
    fronts: list[list[int]] = [[i for i in range(n) if dominated_count[i] == 0]]
    while fronts[-1]:
        next_front: list[int] = []
        for i in fronts[-1]:
            for j in dominates_sets[i]:
                dominated_count[j] -= 1
                if dominated_count[j] == 0:
                    next_front.append(int(j))
        fronts.append(next_front)
    return fronts[:-1]


def crowding_distance(perfs: np.ndarray, front: list[int]) -> dict[int, float]:
    """Crowding distance within one front (boundary points get +inf)."""
    distance = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: float("inf") for i in front}
    k = perfs.shape[1]
    for m in range(k):
        ordered = sorted(front, key=lambda i: perfs[i, m])
        span = perfs[ordered[-1], m] - perfs[ordered[0], m]
        distance[ordered[0]] = distance[ordered[-1]] = float("inf")
        if span <= 0:
            continue
        for rank in range(1, len(ordered) - 1):
            gap = perfs[ordered[rank + 1], m] - perfs[ordered[rank - 1], m]
            distance[ordered[rank]] += gap / span
    return distance


class NSGAIIMODis(SkylineAlgorithm):
    """NSGA-II on the MODis search space (comparator, not a MODis variant).

    ``budget`` caps the number of *distinct* states valuated, like the
    MODis algorithms; generations stop early once it is exhausted.
    """

    name = "NSGA-II"

    def __init__(
        self,
        config,
        epsilon: float = 0.1,
        budget: int = 200,
        max_level: int = 6,  # unused; kept for interface parity
        population: int = 20,
        generations: int = 10,
        crossover_rate: float = 0.9,
        mutation_rate: float | None = None,
        seed: int | None = None,
    ):
        super().__init__(config, epsilon=epsilon, budget=budget,
                         max_level=max_level)
        if population < 4:
            raise SearchError("population must be >= 4")
        self.population_size = int(population)
        self.generations = int(generations)
        self.crossover_rate = float(crossover_rate)
        self.mutation_rate = (
            mutation_rate if mutation_rate is not None
            else 1.0 / max(config.space.width, 1)
        )
        self.seed = config.seed if seed is None else seed

    # -- GA plumbing -------------------------------------------------------------
    def _random_bits(self, rng) -> int:
        space = self.config.space
        bits = space.universal_bits
        flips = int(rng.integers(0, max(1, space.width // 2)))
        for _ in range(flips):
            index = int(rng.integers(space.width))
            if space.valid_flip(bits, index):
                bits ^= 1 << index
        return bits

    def _crossover(self, a: int, b: int, rng) -> int:
        width = self.config.space.width
        mask = 0
        for i in range(width):
            if rng.random() < 0.5:
                mask |= 1 << i
        return (a & mask) | (b & ~mask)

    def _mutate(self, bits: int, rng) -> int:
        space = self.config.space
        for index in range(space.width):
            if rng.random() < self.mutation_rate and space.valid_flip(bits, index):
                bits ^= 1 << index
        return bits

    def _emit_generation_progress(
        self, generation: int, population: list[int], perfs: np.ndarray
    ) -> None:
        """Per-generation progress + partial front.

        Unlike the MODis variants, the grid is only fed *after* the loop
        (lines below), so the partial skyline is the current population's
        first non-dominated front — an extra sort paid only when an
        emitter is actually installed.
        """
        if not events_enabled() or current_emitter() is None:
            return
        front = non_dominated_sort(perfs)[0] if len(population) else []
        counters = self._progress_counters()
        counters["generation"] = generation
        counters["front_size"] = len(front)
        emit("progress", **counters)
        emit_partial(
            [
                {
                    "description": "nsga2",
                    "bits": hex(population[i]),
                    "performance": self.config.measures.as_dict(perfs[i]),
                }
                for i in sorted(front, key=lambda i: tuple(perfs[i]))
            ]
        )

    def _evaluate(self, population: list[int]) -> np.ndarray:
        """Valuate a whole generation in one batched estimator call."""
        states = [State(bits=bits, via="nsga2") for bits in population]
        for state in states:
            self.graph.add_state(state)
        return self._valuate_batch(states)

    # -- main loop ---------------------------------------------------------------
    def _search(self) -> None:
        rng = make_rng(self.seed)
        space = self.config.space
        population = [space.universal_bits, space.backward_bits()]
        seen = set(population)
        while len(population) < self.population_size:
            bits = self._random_bits(rng)
            if bits not in seen:
                population.append(bits)
                seen.add(bits)
        perfs = self._evaluate(population)
        for generation in range(self.generations):
            if self.budget_exhausted:
                self.report.terminated_by = "budget"
                break
            self.report.n_levels = generation + 1
            fronts = non_dominated_sort(perfs)
            rank = {}
            for r, front in enumerate(fronts):
                for i in front:
                    rank[i] = r
            crowd: dict[int, float] = {}
            for front in fronts:
                crowd.update(crowding_distance(perfs, front))

            def tournament() -> int:
                i, j = rng.integers(len(population)), rng.integers(len(population))
                i, j = int(i), int(j)
                if rank[i] != rank[j]:
                    return i if rank[i] < rank[j] else j
                return i if crowd[i] >= crowd[j] else j

            offspring: list[int] = []
            while len(offspring) < self.population_size:
                pa, pb = population[tournament()], population[tournament()]
                child = (
                    self._crossover(pa, pb, rng)
                    if rng.random() < self.crossover_rate
                    else pa
                )
                child = self._mutate(child, rng)
                offspring.append(child)
            offspring_perfs = self._evaluate(offspring)
            merged = population + offspring
            merged_perfs = np.vstack([perfs, offspring_perfs])
            # elitist survival: fill from the best fronts, crowding-sorted
            fronts = non_dominated_sort(merged_perfs)
            survivors: list[int] = []
            for front in fronts:
                if len(survivors) + len(front) <= self.population_size:
                    survivors.extend(front)
                else:
                    crowd = crowding_distance(merged_perfs, front)
                    ordered = sorted(front, key=lambda i: -crowd[i])
                    survivors.extend(
                        ordered[: self.population_size - len(survivors)]
                    )
                    break
            population = [merged[i] for i in survivors]
            perfs = merged_perfs[survivors]
            self._emit_generation_progress(generation + 1, population, perfs)
        # feed the final population's non-dominated front into the grid
        fronts = non_dominated_sort(perfs)
        for i in fronts[0]:
            state = State(bits=population[i], via="nsga2", perf=perfs[i])
            self.grid.update(state)
        if self.report.terminated_by != "budget":
            self.report.terminated_by = "generations"
