"""ApxMODis — the (N, ε)-approximation by "reduce-from-universal" (Alg. 1).

Starts from the universal state ``s_U`` (all bitmap entries active — the
outer join of all sources) and explores level-wise, spawning children by
flipping one active entry off (a Reduct) per OpGen. Every spawned state is
valuated and offered to the UPareto ε-grid; the search stops when N states
are valuated, maxl levels are exhausted, or no new state can be generated.
"""

from __future__ import annotations

from collections import deque

from ...obs import span
from ..state import State
from .base import SkylineAlgorithm


class ApxMODis(SkylineAlgorithm):
    """Algorithm 1 of the paper."""

    name = "ApxMODis"

    def _search(self) -> None:
        space = self.config.space
        start = State(bits=space.universal_bits, level=0, via="s_U")
        self.graph.add_state(start)
        self._valuate(start)
        self.grid.update(start)
        queue: deque[State] = deque([start])
        visited: set[int] = {start.bits}
        # BFS visits parents in level order, so one "level" span brackets
        # each batch of same-level expansions; opened/closed manually
        # because the level boundary is only visible at the next popleft.
        level_span = None
        current_level = -1
        try:
            while queue:
                if self.budget_exhausted:
                    self.report.terminated_by = "budget"
                    break
                parent = queue.popleft()
                if parent.level >= self.max_level:
                    continue
                if parent.level != current_level:
                    if level_span is not None:
                        level_span.__exit__(None, None, None)
                        self._emit_level_progress()
                    current_level = parent.level
                    level_span = span("level", level=parent.level + 1)
                    level_span.__enter__()
                self.report.n_levels = max(
                    self.report.n_levels, parent.level + 1
                )
                for child_bits, op in self.transducer.spawn(
                    parent.bits, "forward"
                ):
                    if child_bits in visited:
                        continue
                    visited.add(child_bits)
                    child = State(
                        bits=child_bits,
                        level=parent.level + 1,
                        via=op,
                        parent_bits=parent.bits,
                    )
                    self.graph.add_state(child)
                    self.graph.add_transition(parent.bits, child_bits, op)
                    self.report.n_spawned += 1
                    self._valuate(child)
                    self.grid.update(child)
                    queue.append(child)
                    if self.budget_exhausted:
                        break
            else:
                self.report.terminated_by = "exhausted"
        finally:
            if level_span is not None:
                level_span.__exit__(None, None, None)
                self._emit_level_progress()
