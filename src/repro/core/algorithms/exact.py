"""ExactMODis — the fixed-parameter tractable exact algorithm (Theorem 1).

The constructive proof of Theorem 1 outlines it: "(1) exhaust the runnings
of a skyline generator T ... and valuate at most N possible states; (2)
invoke a multi-objective optimizer such as Kung's algorithm." This is the
ground-truth baseline the approximation algorithms are tested against: a
full BFS over the running graph (both operator directions), valuation of
every reachable state within the budget, an exact Pareto front via Kung's
maxima algorithm, and the user-range filter of the skyline definition.
"""

from __future__ import annotations

from collections import deque

from ..dominance import pareto_front
from ..state import State
from .base import SkylineAlgorithm


class ExactMODis(SkylineAlgorithm):
    """Exhaustive valuation + Kung's algorithm (exact on valuated states)."""

    name = "ExactMODis"

    def __init__(self, config, epsilon: float = 0.1, budget: int = 500,
                 max_level: int = 10, enforce_ranges: bool = True):
        super().__init__(config, epsilon=epsilon, budget=budget, max_level=max_level)
        self.enforce_ranges = enforce_ranges
        self._all_states: list[State] = []
        self._front_states: list[State] = []

    def _verification_targets(self) -> list[State]:
        return self._front_states

    def _search(self) -> None:
        space = self.config.space
        start = State(bits=space.universal_bits, level=0, via="s_U")
        self.graph.add_state(start)
        self._valuate(start)
        self._all_states.append(start)
        queue: deque[State] = deque([start])
        visited: set[int] = {start.bits}
        while queue and not self.budget_exhausted:
            parent = queue.popleft()
            if parent.level >= self.max_level:
                continue
            self.report.n_levels = max(self.report.n_levels, parent.level + 1)
            for child_bits, op in self.transducer.spawn(parent.bits, "forward"):
                if child_bits in visited:
                    continue
                visited.add(child_bits)
                child = State(
                    bits=child_bits,
                    level=parent.level + 1,
                    via=op,
                    parent_bits=parent.bits,
                )
                self.graph.add_state(child)
                self.graph.add_transition(parent.bits, child_bits, op)
                self.report.n_spawned += 1
                self._valuate(child)
                self._all_states.append(child)
                queue.append(child)
                if self.budget_exhausted:
                    self.report.terminated_by = "budget"
                    break
        # Exact skyline over all valuated states (Kung's algorithm).
        candidates = self._all_states
        if self.enforce_ranges:
            candidates = [
                s
                for s in candidates
                if self.config.measures.within_ranges(s.perf)
            ]
            if not candidates:  # nothing satisfies the ranges: fall back
                candidates = self._all_states
        front = pareto_front([s.perf for s in candidates])
        self._front_states = [candidates[i] for i in front]

    def _make_result(self):
        """Assemble the exact front directly (no ε-grid approximation)."""
        from .base import DiscoveryResult, SkylineEntry

        entries = []
        for state in sorted(self._front_states, key=lambda s: tuple(s.perf)):
            entries.append(
                SkylineEntry(
                    state=state,
                    perf=self.config.measures.as_dict(state.perf),
                    output_size=self.config.space.output_size(state.bits),
                    description=state.via or "s_U",
                )
            )
        return DiscoveryResult(
            entries=entries,
            measures=self.config.measures,
            report=self.report,
            running_graph=self.graph,
            epsilon=self.epsilon,
        )

    @property
    def all_valuated_states(self) -> list[State]:
        """Every state valuated during the run (tests compare against it)."""
        return list(self._all_states)
