"""The MODis algorithm family (Section 5) plus the §5.4 comparators."""

from .apx import ApxMODis
from .base import AlgorithmReport, DiscoveryResult, SkylineAlgorithm, SkylineEntry
from .bimodis import BiMODis, NOBiMODis
from .divmodis import DivMODis
from .exact import ExactMODis
from .nsga2 import NSGAIIMODis
from .rl import RLMODis

ALGORITHMS = {
    "apx": ApxMODis,
    "bimodis": BiMODis,
    "nobimodis": NOBiMODis,
    "divmodis": DivMODis,
    "exact": ExactMODis,
    "nsga2": NSGAIIMODis,
    "rl": RLMODis,
}

__all__ = [
    "ALGORITHMS",
    "AlgorithmReport",
    "ApxMODis",
    "BiMODis",
    "DiscoveryResult",
    "DivMODis",
    "ExactMODis",
    "NOBiMODis",
    "NSGAIIMODis",
    "RLMODis",
    "SkylineAlgorithm",
    "SkylineEntry",
]
