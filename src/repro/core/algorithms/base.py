"""Shared machinery for the MODis algorithms.

Defines the result types every algorithm returns and the
:class:`SkylineAlgorithm` base class: budget accounting (the paper's N),
level bookkeeping (maxl), valuation through the configured estimator, the
UPareto ε-grid, and running-graph recording.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ...exceptions import SearchError
from ...obs import (
    current_emitter,
    emit,
    emit_partial,
    events_enabled,
    heartbeat,
    span,
)
from ..config import Configuration
from ..dominance import SkylineGrid, pareto_front
from ..measures import MeasureSet
from ..state import State
from ..transducer import RunningGraph, Transducer


@dataclass(slots=True)
class SkylineEntry:
    """One output dataset: its state, performance, and provenance."""

    state: State
    perf: dict[str, float]
    output_size: tuple[int, int]
    description: str

    @property
    def bits(self) -> int:
        return self.state.bits


@dataclass
class AlgorithmReport:
    """Run statistics: budget usage, pruning, wall time."""

    algorithm: str
    n_valuated: int = 0
    n_spawned: int = 0
    n_pruned: int = 0
    n_levels: int = 0
    elapsed_seconds: float = 0.0
    terminated_by: str = "exhausted"
    extras: dict[str, Any] = field(default_factory=dict)


class DiscoveryResult:
    """An ε-skyline set of datasets plus the run report."""

    def __init__(
        self,
        entries: list[SkylineEntry],
        measures: MeasureSet,
        report: AlgorithmReport,
        running_graph: RunningGraph,
        epsilon: float,
    ):
        self.entries = entries
        self.measures = measures
        self.report = report
        self.running_graph = running_graph
        self.epsilon = epsilon

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def best_by(self, measure: str) -> SkylineEntry:
        """The entry with the smallest (best) normalized value of a measure.

        Mirrors the paper's reporting: "we select the table in the Skyline
        set with the best estimated p_Acc ..." per task.
        """
        if not self.entries:
            raise SearchError("empty skyline set")
        index = self.measures.index_of(measure)
        return min(self.entries, key=lambda e: e.state.perf[index])

    def perf_matrix(self) -> np.ndarray:
        """(n_entries, |P|) matrix of normalized performance vectors."""
        if not self.entries:
            return np.zeros((0, len(self.measures)))
        return np.stack([e.state.perf for e in self.entries])

    def to_rows(self) -> list[dict[str, Any]]:
        """Flat rows for printing/benchmark tables."""
        rows = []
        for entry in self.entries:
            row: dict[str, Any] = {"dataset": entry.description}
            row.update({k: round(v, 4) for k, v in entry.perf.items()})
            row["output_size"] = entry.output_size
            rows.append(row)
        return rows

    def __repr__(self) -> str:
        return (
            f"DiscoveryResult({self.report.algorithm}, {len(self.entries)} "
            f"datasets, N={self.report.n_valuated}, "
            f"{self.report.elapsed_seconds:.2f}s)"
        )


class SkylineAlgorithm(abc.ABC):
    """Base class: one ``run()`` producing a :class:`DiscoveryResult`.

    Parameters shared by all variants (Section 5):

    * ``epsilon`` — the ε of the ε-skyline approximation;
    * ``budget`` — N, the maximum number of states valuated;
    * ``max_level`` — maxl, the maximum path length explored.
    """

    name = "base"

    #: Whether _make_result thins the grid to mutually non-dominated states.
    #: DivMODis turns this off: diversification deliberately retains
    #: "less optimal but more different" datasets (Section 5.4).
    thin_front = True

    def __init__(
        self,
        config: Configuration,
        epsilon: float = 0.1,
        budget: int = 200,
        max_level: int = 6,
    ):
        if epsilon <= 0:
            raise SearchError("epsilon must be positive")
        if budget < 1:
            raise SearchError("budget N must be >= 1")
        if max_level < 1:
            raise SearchError("max_level must be >= 1")
        self.config = config
        self.epsilon = float(epsilon)
        self.budget = int(budget)
        self.max_level = int(max_level)
        self.transducer = Transducer(config.space)
        self.grid = SkylineGrid(config.measures, self.epsilon)
        self.graph = RunningGraph()
        self.report = AlgorithmReport(algorithm=self.name)
        self._run_valuated: set[int] = set()

    # -- valuation ---------------------------------------------------------------
    def _valuate(self, state: State) -> np.ndarray:
        """Valuate via the estimator, counting budget per distinct state."""
        return self._valuate_batch([state])[0]

    def _valuate_batch(self, states: list[State]) -> np.ndarray:
        """Valuate many states in one estimator call (row i ↔ states[i]).

        Budget accounting matches the sequential path exactly: a state
        counts when it was not yet in T (first occurrence only) or has not
        been valuated by *this* run before.
        """
        if not states:
            return np.zeros((0, len(self.config.measures)))
        estimator = self.config.estimator
        fresh = {s.bits for s in states if s.bits not in estimator.store}
        with span("valuate", n_states=len(states), n_fresh=len(fresh)):
            perfs = estimator.valuate_batch(
                [s.bits for s in states], self.config.space
            )
        for state, perf in zip(states, perfs):
            state.perf = perf
            if state.bits in fresh:
                fresh.discard(state.bits)  # later duplicates hit the memo
                self._run_valuated.add(state.bits)
                self.report.n_valuated += 1
            elif state.bits not in self._run_valuated:
                self._run_valuated.add(state.bits)
                self.report.n_valuated += 1
        # Liveness tick for the scheduler: rate-limited inside the
        # emitter, constant-time no-op when none is installed.
        heartbeat(n_valuated=self.report.n_valuated, budget=self.budget)
        return perfs

    @property
    def budget_exhausted(self) -> bool:
        return self.report.n_valuated >= self.budget

    # -- live progress ------------------------------------------------------------
    def _progress_counters(self) -> dict[str, Any]:
        """Counters shipped with every progress event."""
        return {
            "algorithm": self.name,
            "level": self.report.n_levels,
            "n_valuated": self.report.n_valuated,
            "n_spawned": self.report.n_spawned,
            "n_pruned": self.report.n_pruned,
            "budget": self.budget,
            "front_size": len(self.grid.states),
        }

    def _partial_entries(self) -> list[dict[str, Any]]:
        """The current grid as JSON-ready partial-skyline entries.

        Unlike :meth:`_make_result`, the grid is *not* thinned and the
        perfs are estimates, not verified oracle values — partial results
        are progress telemetry, documented as such in the service API.
        """
        states = [s for s in self.grid.states if s.perf is not None]
        states.sort(key=lambda s: tuple(s.perf))
        # Same entry shape as repro.report.entry_payload (minus the
        # materialization-only keys), so clients render partial and final
        # skylines with the same code.
        return [
            {
                "description": s.via or "s_U",
                "bits": hex(s.bits),
                "performance": self.config.measures.as_dict(s.perf),
            }
            for s in states
        ]

    def _emit_level_progress(self) -> None:
        """Publish progress counters + a refreshed partial skyline.

        Called by subclasses at each level/generation boundary. Skips the
        (comparatively expensive) snapshot assembly entirely when no
        emitter is installed, so library use pays only this guard.
        """
        if not events_enabled() or current_emitter() is None:
            return
        emit("progress", **self._progress_counters())
        emit_partial(self._partial_entries())

    # -- result assembly -----------------------------------------------------------
    def _make_result(self) -> DiscoveryResult:
        states = [s for s in self.grid.states if s.perf is not None]
        # The grid is an ε-cover; thin it to mutually non-dominated members
        # (removing a dominated member keeps the cover: its dominator stays).
        if states and self.thin_front:
            with span("pareto-thin", n_grid=len(states)) as thin_span:
                front = pareto_front([s.perf for s in states])
                states = [states[i] for i in front]
                thin_span.set_attr(n_front=len(states))
        entries = []
        for state in sorted(states, key=lambda s: tuple(s.perf)):
            entries.append(
                SkylineEntry(
                    state=state,
                    perf=self.config.measures.as_dict(state.perf),
                    output_size=self.config.space.output_size(state.bits),
                    description=state.via or "s_U",
                )
            )
        return DiscoveryResult(
            entries=entries,
            measures=self.config.measures,
            report=self.report,
            running_graph=self.graph,
            epsilon=self.epsilon,
        )

    # -- verification -----------------------------------------------------------------
    def _verification_targets(self) -> list[State]:
        return self.grid.states

    def _verify(self) -> None:
        """Re-valuate the output states with the true oracle.

        This is the paper's reporting protocol ("we apply model inference to
        all the output tables to report actual performance values"): the
        search navigates on estimates, but the final skyline carries ground
        truth. Skipped when the configuration has no oracle or a target was
        already oracle-valuated.
        """
        oracle = self.config.oracle
        if oracle is None:
            return
        from ..estimator import oracle_artifact

        store = self.config.estimator.store
        calls = 0
        targets = self._verification_targets()
        with span("verify", n_targets=len(targets)) as verify_span:
            for state in targets:
                record = store.get(state.bits)
                if record is not None and record.source == "oracle":
                    state.perf = record.perf
                    continue
                raw = oracle(
                    oracle_artifact(self.config.space, oracle, state.bits)
                )
                perf = self.config.measures.normalize_raw(raw)
                state.perf = perf
                calls += 1
                from ..estimator import TestRecord

                store.add(
                    TestRecord(
                        state.bits,
                        self.config.space.feature_vector(state.bits),
                        perf,
                    )
                )
            verify_span.set_attr(oracle_calls=calls)
        self.report.extras["verification_calls"] = calls

    # -- template method ---------------------------------------------------------------
    def run(self, verify: bool = True) -> DiscoveryResult:
        """Execute the search; with ``verify`` (default), re-score the final
        skyline states with real model training before returning."""
        start = time.perf_counter()
        with span("search", algorithm=self.name) as search_span:
            self._search()
            search_span.set_attr(
                n_valuated=self.report.n_valuated,
                terminated_by=self.report.terminated_by,
            )
        if verify:
            self._verify()
        self.report.elapsed_seconds = time.perf_counter() - start
        return self._make_result()

    @abc.abstractmethod
    def _search(self) -> None:
        """Populate the grid/graph; set ``report.terminated_by``."""
