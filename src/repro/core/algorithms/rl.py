"""Scalarized Q-learning over bitmap states — the RL alternative of §5.4.

The paper's Remarks position MODis against "reinforcement-learning based
methods [29]", noting they "are effective for general state exploration
but require high-quality training samples and may not converge over
'conflicting' measures". This module implements that comparator so the
claim is measurable on the same search space and estimator:

* **multi-policy scalarization** — each policy owns a weight vector ``w``
  on the probability simplex; its scalar return is ``-w·perf`` (all
  measures are minimize-me). Learning several policies with diverse
  weights approximates a Pareto front (Liu, Xu & Hu, 2014);
* **tabular Q-learning** — ε-greedy episodes over single-bit flips
  (Reducts *and* Augments), standard TD(0) update per policy;
* every valuated state feeds the shared UPareto ε-grid, so the output is
  directly comparable with the MODis variants' ε-skyline sets.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import SearchError
from ...rng import make_rng
from ..state import State
from .base import SkylineAlgorithm


class RLMODis(SkylineAlgorithm):
    """Multi-policy scalarized Q-learning comparator (not a MODis variant).

    ``budget`` caps distinct valuated states exactly as for MODis; episodes
    stop early once it is exhausted. ``max_level`` bounds episode length,
    mirroring the maxl path bound of the transducer algorithms.
    """

    name = "RL-MODis"

    def __init__(
        self,
        config,
        epsilon: float = 0.1,
        budget: int = 200,
        max_level: int = 6,
        n_policies: int = 4,
        episodes: int = 30,
        alpha: float = 0.5,
        gamma: float = 0.9,
        explore: float = 0.2,
        seed: int | None = None,
    ):
        super().__init__(config, epsilon=epsilon, budget=budget,
                         max_level=max_level)
        if n_policies < 1:
            raise SearchError("n_policies must be >= 1")
        if episodes < 1:
            raise SearchError("episodes must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise SearchError("alpha must be in (0, 1]")
        if not 0.0 <= gamma <= 1.0:
            raise SearchError("gamma must be in [0, 1]")
        if not 0.0 <= explore <= 1.0:
            raise SearchError("explore must be in [0, 1]")
        self.n_policies = int(n_policies)
        self.episodes = int(episodes)
        self.alpha = float(alpha)
        self.gamma = float(gamma)
        self.explore = float(explore)
        self.seed = config.seed if seed is None else seed
        #: Q[policy][(bits, action_index)] -> value
        self._q: list[dict[tuple[int, int], float]] = [
            {} for _ in range(self.n_policies)
        ]
        self.weights = self._make_weights()

    # -- policies -----------------------------------------------------------------
    def _make_weights(self) -> np.ndarray:
        """Weight vectors on the simplex; the first is uniform, the rest are
        a deterministic Dirichlet(1) sample so policies disagree."""
        k = len(self.config.measures)
        rng = make_rng(self.seed)
        rows = [np.full(k, 1.0 / k)]
        for _ in range(self.n_policies - 1):
            rows.append(rng.dirichlet(np.ones(k)))
        return np.stack(rows)

    def _scalar(self, policy: int, perf: np.ndarray) -> float:
        """The scalarized objective (to minimize) of one policy."""
        return float(self.weights[policy] @ perf)

    # -- environment --------------------------------------------------------------
    def _actions(self, bits: int) -> list[int]:
        """Applicable single-bit flips (both ⊖ and ⊕ directions)."""
        space = self.config.space
        return [
            index
            for index in range(space.width)
            if space.valid_flip(bits, index)
        ]

    def _perf_of(self, bits: int, via: str, level: int,
                 parent: int | None) -> np.ndarray:
        state = self.graph.states.get(bits)
        if state is None:
            state = State(bits=bits, level=level, via=via, parent_bits=parent)
            self.graph.add_state(state)
        perf = self._valuate(state)
        self.grid.update(state)
        return perf

    # -- main loop ----------------------------------------------------------------
    def _search(self) -> None:
        rng = make_rng(self.seed)
        space = self.config.space
        starts = [space.universal_bits, space.backward_bits()]
        for episode in range(self.episodes):
            if self.budget_exhausted:
                self.report.terminated_by = "budget"
                return
            policy = episode % self.n_policies
            q = self._q[policy]
            bits = starts[episode % len(starts)]
            perf = self._perf_of(bits, via="rl:start", level=0, parent=None)
            value = self._scalar(policy, perf)
            for step in range(self.max_level):
                if self.budget_exhausted:
                    self.report.terminated_by = "budget"
                    return
                actions = self._actions(bits)
                if not actions:
                    break
                if rng.random() < self.explore:
                    action = int(actions[rng.integers(len(actions))])
                else:
                    action = max(
                        actions, key=lambda a: (q.get((bits, a), 0.0), -a)
                    )
                child_bits = bits ^ (1 << action)
                op = f"rl:flip[{space.describe_entry(action)}]"
                child_perf = self._perf_of(
                    child_bits, via=op, level=step + 1, parent=bits
                )
                self.graph.add_transition(bits, child_bits, op)
                self.report.n_spawned += 1
                child_value = self._scalar(policy, child_perf)
                reward = value - child_value  # positive when the child improves
                future = max(
                    (
                        q.get((child_bits, a), 0.0)
                        for a in self._actions(child_bits)
                    ),
                    default=0.0,
                )
                old = q.get((bits, action), 0.0)
                q[(bits, action)] = old + self.alpha * (
                    reward + self.gamma * future - old
                )
                bits, value = child_bits, child_value
            self.report.n_levels = max(self.report.n_levels, self.max_level)
        self.report.terminated_by = "episodes"

    # -- introspection -------------------------------------------------------------
    @property
    def q_table_sizes(self) -> list[int]:
        """Learned (state, action) pairs per policy — the "training samples"
        cost the paper's Remarks attribute to RL methods."""
        return [len(q) for q in self._q]
