"""DivMODis — diversified skyline generation (Section 5.4, Algorithm 3).

Runs the bi-directional search and, at the end of every level, replaces the
current ε-skyline set with a greedily diversified k-subset (the stream
submodular-maximization policy with the ¼-approximation of Lemma 5).
States evicted by diversification leave the grid, so later levels can
re-populate their cells with more diverse alternatives.
"""

from __future__ import annotations

from ..config import Configuration
from ..diversity import greedy_diversify, max_euclidean
from .bimodis import BiMODis


class DivMODis(BiMODis):
    """Algorithm 3 layered on the bi-directional search."""

    name = "DivMODis"
    thin_front = False  # keep diverse-but-dominated members (Section 5.4)

    def __init__(
        self,
        config: Configuration,
        epsilon: float = 0.1,
        budget: int = 200,
        max_level: int = 6,
        k: int = 5,
        alpha: float = 0.5,
        pruning: bool = True,
        theta: float = 0.8,
    ):
        super().__init__(
            config,
            epsilon=epsilon,
            budget=budget,
            max_level=max_level,
            pruning=pruning,
            theta=theta,
        )
        self.k = int(k)
        self.alpha = float(alpha)

    def _end_of_level(self, level: int) -> None:
        """The diversification step of Algorithm 3 at level i."""
        states = self.grid.states
        if len(states) <= self.k:
            return
        euc_max = max_euclidean(self.config.estimator.store.perf_matrix())
        kept = greedy_diversify(
            states,
            k=self.k,
            width=self.config.space.width,
            alpha=self.alpha,
            euc_max=euc_max,
            seed=self.config.seed + level,
        )
        kept_bits = {s.bits for s in kept}
        for state in states:
            if state.bits not in kept_bits:
                self.grid.remove(state)
        self.report.extras["diversified_at_levels"] = (
            self.report.extras.get("diversified_at_levels", [])
        )
        self.report.extras["diversified_at_levels"].append(level)
