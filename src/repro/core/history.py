"""Persisting the historical test set ``T`` across sessions.

Section 2: "An estimator E makes use of a set of historically observed
performance of M (denoted as T) to infer its performance over a new
dataset." Within one running, ``T`` lives in a
:class:`~repro.core.estimator.TestStore`; this module adds the
across-sessions half of the story:

* :func:`save_test_store` / :func:`load_test_store` — JSON round-trip of
  every test record (bitmap, state features, normalized performance
  vector, oracle/surrogate provenance);
* a warm-started :class:`~repro.core.estimator.MOGBEstimator` — construct
  it with a loaded store and it skips the bootstrap oracle calls entirely,
  exactly the "learn from historical tuning records" usage the paper
  describes for estimation models.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import EstimatorError
from ..ioutil import atomic_write_json
from .estimator import TestStore
from .measures import MeasureSet

FORMAT_VERSION = 1


def save_test_store(
    store: TestStore,
    path: str | Path,
    measures: MeasureSet | None = None,
) -> Path:
    """Write every test record of ``store`` to ``path`` as JSON.

    ``measures`` (optional) embeds the measure names so a later load can
    refuse a store recorded under a different ``P``.
    """
    payload = {
        "version": FORMAT_VERSION,
        "measures": list(measures.names) if measures is not None else None,
        "records": store.to_payload(),
    }
    return atomic_write_json(path, payload, indent=2)


def load_test_store(
    path: str | Path,
    measures: MeasureSet | None = None,
) -> TestStore:
    """Read a test store back from :func:`save_test_store` output.

    With ``measures`` given, the stored measure names (when present) and
    every record's vector length must match — loading history recorded
    under a different ``P`` would silently corrupt estimates otherwise.
    """
    path = Path(path)
    if not path.exists():
        raise EstimatorError(f"no test-store file at {path}")
    with path.open() as fh:
        payload = json.load(fh)
    if payload.get("version") != FORMAT_VERSION:
        raise EstimatorError(
            f"unsupported test-store version {payload.get('version')!r}"
        )
    stored_names = payload.get("measures")
    if (
        measures is not None
        and stored_names is not None
        and tuple(stored_names) != measures.names
    ):
        raise EstimatorError(
            f"test store was recorded for measures {stored_names}, "
            f"expected {list(measures.names)}"
        )
    return TestStore.from_payload(
        payload["records"],
        n_measures=len(measures) if measures is not None else None,
    )
