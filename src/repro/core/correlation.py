"""Correlation graph and parameterized ε-dominance (BiMODis pruning).

Section 5.3: BiMODis "dynamically maintains a correlation graph G_C, where
each node represents a measure in P, and there is an edge (p_i, p_j) ... if
p_i and p_j are strongly correlated" (Spearman ρ ≥ θ over the valuated
tests T). Un-valuated measures of a state are *parameterized* with a range
``[p̂_l, p̂_u]`` inferred from the most strongly correlated valuated measure
(the bracketing-records construction of Example 6), and states can then be
compared by the three-case parameterized dominance relation ``s' ≾_ε s`` of
Lemma 4 — pruning provably-dominated states without a full valuation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..exceptions import SearchError
from .estimator import TestStore
from .measures import MeasureSet

_TIE = 1e-12


class CorrelationGraph:
    """Pairwise Spearman correlations of measures over the test set T."""

    def __init__(self, measures: MeasureSet, theta: float = 0.8):
        if not 0.0 < theta <= 1.0:
            raise SearchError("theta must be in (0, 1]")
        self.measures = measures
        self.theta = theta
        self._rho = np.zeros((len(measures), len(measures)))
        self._n_tests = 0

    def update(self, store: TestStore) -> None:
        """Recompute ρ from the current test records (≥ 3 needed)."""
        matrix = store.perf_matrix()
        self._n_tests = matrix.shape[0]
        k = len(self.measures)
        self._rho = np.zeros((k, k))
        if matrix.shape[0] < 3:
            return
        for i in range(k):
            for j in range(i + 1, k):
                xi, xj = matrix[:, i], matrix[:, j]
                if np.ptp(xi) < _TIE or np.ptp(xj) < _TIE:
                    continue  # constant measure: correlation undefined
                rho = stats.spearmanr(xi, xj).statistic
                if np.isnan(rho):
                    continue
                self._rho[i, j] = self._rho[j, i] = float(rho)

    def correlation(self, i: int, j: int) -> float:
        """Spearman coefficient between measures ``i`` and ``j``."""
        return float(self._rho[i, j])

    def strong_partners(self, i: int) -> list[tuple[int, float]]:
        """Measures strongly correlated with measure ``i`` (|ρ| ≥ θ),
        strongest first."""
        partners = [
            (j, float(self._rho[i, j]))
            for j in range(len(self.measures))
            if j != i and abs(self._rho[i, j]) >= self.theta
        ]
        return sorted(partners, key=lambda p: -abs(p[1]))

    def edges(self) -> list[tuple[str, str, float]]:
        """(measure, measure, ρ) for every strong edge — for inspection."""
        names = self.measures.names
        out = []
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                if abs(self._rho[i, j]) >= self.theta:
                    out.append((names[i], names[j], float(self._rho[i, j])))
        return out


def infer_ranges(
    known: dict[int, float],
    measures: MeasureSet,
    corr: CorrelationGraph,
    store: TestStore,
) -> tuple[np.ndarray, np.ndarray]:
    """Parameterized ranges ``[p̂_l, p̂_u]`` for the un-valuated measures.

    For a missing measure ``p_i`` with a strong partner ``p_j`` whose value
    ``v_j`` is known: locate the two test records bracketing ``v_j`` on
    ``p_j`` and return the interval their ``p_i`` values span (Example 6's
    inference). Measures without usable partners fall back to their user
    range ``[p_l, p_u]``; known measures get a degenerate [v, v] range.
    """
    k = len(measures)
    low = np.empty(k)
    high = np.empty(k)
    matrix = store.perf_matrix()
    for i, measure in enumerate(measures):
        if i in known:
            low[i] = high[i] = known[i]
            continue
        low[i], high[i] = measure.lower, measure.upper
        if matrix.shape[0] < 2:
            continue
        for j, _rho in corr.strong_partners(i):
            if j not in known:
                continue
            v_j = known[j]
            below = matrix[matrix[:, j] <= v_j + _TIE]
            above = matrix[matrix[:, j] >= v_j - _TIE]
            anchors = []
            if below.shape[0]:
                anchors.append(below[np.argmax(below[:, j])])
            if above.shape[0]:
                anchors.append(above[np.argmin(above[:, j])])
            if not anchors:
                continue
            values = [a[i] for a in anchors]
            inferred_low, inferred_high = min(values), max(values)
            # Clamp into the user range; keep the interval non-empty.
            low[i] = float(np.clip(inferred_low, measure.lower, measure.upper))
            high[i] = float(np.clip(inferred_high, low[i], measure.upper))
            break
    return low, high


@dataclass(frozen=True, slots=True)
class RangedPerf:
    """A (possibly partially valuated) performance with ranges.

    ``value[i]`` is the valuated measure or NaN; ``low``/``high`` bound the
    un-valuated ones (and equal the value where valuated).
    """

    value: np.ndarray
    low: np.ndarray
    high: np.ndarray

    def is_valuated(self, i: int) -> bool:
        """Whether measure ``i`` carries a concrete value (not just a range)."""
        return not np.isnan(self.value[i])


def parameterized_dominates(
    s_prime: RangedPerf, s: RangedPerf, epsilon: float
) -> bool:
    """Lemma 4's three-case relation ``s' ≾_ε s``.

    Per measure p: (1) both valuated — ``s'.P(p) ≤ (1+ε) s.P(p)``;
    (2) neither — ``s'.p̂_u ≤ (1+ε) s.p̂_l``; (3) one valuated — compare the
    valuated side against the other's conservative bound.
    """
    if epsilon < 0:
        raise SearchError("epsilon must be non-negative")
    k = len(s_prime.value)
    factor = 1.0 + epsilon
    for i in range(k):
        sp_val, s_val = s_prime.is_valuated(i), s.is_valuated(i)
        if sp_val and s_val:
            if s_prime.value[i] > factor * s.value[i] + _TIE:
                return False
        elif not sp_val and not s_val:
            if s_prime.high[i] > factor * s.low[i] + _TIE:
                return False
        elif sp_val:  # only s' valuated
            if s_prime.value[i] > factor * s.low[i] + _TIE:
                return False
        else:  # only s valuated
            if s_prime.high[i] > factor * s.value[i] + _TIE:
                return False
    return True


def monotone_bound_excludes(
    candidate: RangedPerf, anchor: RangedPerf, epsilon: float
) -> bool:
    """The pruning test: may ``candidate`` be discarded given ``anchor``?

    This is the practical form of Lemma 4: when the anchor (a frontier
    state already ε-covered by the running skyline) parameterized-ε-
    dominates the candidate on *every* measure using the candidate's
    optimistic bounds (its p̂_l), the candidate cannot enter any ε-skyline
    of the valuated states, so it is pruned before valuation.
    """
    optimistic = RangedPerf(
        value=np.full(len(candidate.value), np.nan),
        low=candidate.low,
        high=candidate.low,  # candidate at its best possible performance
    )
    return parameterized_dominates(anchor, optimistic, epsilon)
