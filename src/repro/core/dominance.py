"""Dominance relations, exact skylines (Kung's algorithm), and the ε-grid.

Implements Section 4's dominance/skyline definitions and Section 5.1's
ε-machinery:

* :func:`dominates` — Pareto dominance for minimize-me vectors;
* :func:`epsilon_dominates` — ``D' ⪰_ε D`` (every measure within a (1+ε)
  factor, at least one decisively no worse);
* :func:`pareto_front` — exact maxima via blocked numpy broadcasted
  dominance (a point survives iff nothing dominates it), used by
  ExactMODis and by tests as ground truth; :func:`pareto_front_reference`
  keeps the original Kung–Luccio–Preparata divide and conquer (reference
  `[24]` of the paper) as the independent cross-check;
* :class:`SkylineGrid` — the UPareto procedure of Algorithm 1: one
  representative state per ε-grid cell (Equation 1), replaced only when a
  newcomer strictly improves the decisive measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import SearchError
from .measures import MeasureSet
from .state import State, grid_position

_TIE = 1e-12


def dominates(u: np.ndarray, v: np.ndarray) -> bool:
    """``u`` dominates ``v``: u ≤ v everywhere and u < v somewhere."""
    u = np.asarray(u, dtype=float)
    v = np.asarray(v, dtype=float)
    if u.shape != v.shape:
        raise SearchError(f"vector shapes differ: {u.shape} vs {v.shape}")
    return bool(np.all(u <= v + _TIE) and np.any(u < v - _TIE))


def epsilon_dominates(u: np.ndarray, v: np.ndarray, epsilon: float) -> bool:
    """``u ⪰_ε v``: u ≤ (1+ε)·v for every measure and u ≤ v for at least one
    (the decisive measure p*, which "can be any p ∈ P", Section 5.1)."""
    if epsilon < 0:
        raise SearchError("epsilon must be non-negative")
    u = np.asarray(u, dtype=float)
    v = np.asarray(v, dtype=float)
    if u.shape != v.shape:
        raise SearchError(f"vector shapes differ: {u.shape} vs {v.shape}")
    within_factor = np.all(u <= (1.0 + epsilon) * v + _TIE)
    decisively = np.any(u <= v + _TIE)
    return bool(within_factor and decisively)


# ---------------------------------------------------------------------------
# Kung's maxima algorithm (exact skyline)
# ---------------------------------------------------------------------------


def _front_2d(order: list[int], vectors: np.ndarray) -> list[int]:
    """Skyline of presorted points in 2-D: single sweep on the 2nd coord.

    Keeps second coordinates *within the tie tolerance* of the best seen
    — under the tolerant :func:`dominates`, a near-tie is mutual
    non-dominance, so dropping it here would disagree with the brute
    force definition. Over-kept points that a predecessor genuinely
    dominates (strictly better first coordinate) are pruned by
    :func:`pareto_front`'s final tolerant filter.
    """
    best = np.inf
    best_first = np.inf
    front = []
    for idx in order:
        first, second = vectors[idx][0], vectors[idx][1]
        if second < best - _TIE:
            front.append(idx)
            best, best_first = second, first
        elif second <= best + _TIE and best_first >= first - _TIE:
            # Near-tie with the best holder and not strictly worse on
            # the presorted coordinate: mutual non-dominance. (The
            # best-holder comparison also prunes the degenerate
            # constant-second case that would otherwise balloon the
            # caller's final filter.)
            front.append(idx)
            if second < best:
                best, best_first = second, first
    return front


def _kung(order: list[int], vectors: np.ndarray) -> list[int]:
    """Kung's divide & conquer over indices presorted by the first coord."""
    if len(order) <= 1:
        return list(order)
    if vectors.shape[1] == 2:
        return _front_2d(order, vectors)
    mid = len(order) // 2
    top = _kung(order[:mid], vectors)  # better (smaller) on dim 0
    bottom = _kung(order[mid:], vectors)
    # Keep bottom points not dominated by any top point.
    survivors = [
        b
        for b in bottom
        if not any(dominates(vectors[t], vectors[b]) for t in top)
    ]
    return top + survivors


def dominated_mask(matrix: np.ndarray, block_rows: int = 256) -> np.ndarray:
    """Boolean mask: entry ``i`` is True iff some row dominates row ``i``.

    Broadcasted dominance in blocks of candidate dominators: each block
    compares ``(b, 1, d)`` against ``(1, n, d)`` so peak extra memory is
    ``O(block_rows · n · d)`` bools regardless of ``n``. Uses the same
    ``_TIE``-tolerant :func:`dominates` semantics, vectorized.
    """
    n = matrix.shape[0]
    dominated = np.zeros(n, dtype=bool)
    upper = matrix[None, :, :] + _TIE
    lower = matrix[None, :, :] - _TIE
    for start in range(0, n, block_rows):
        block = matrix[start:start + block_rows, None, :]
        le = np.all(block <= upper, axis=-1)
        lt = np.any(block < lower, axis=-1)
        dominated |= (le & lt).any(axis=0)
    return dominated


#: Inputs at least this large take the sort-first-skyline path in
#: :func:`pareto_front`; below it the plain blocked scan wins (the
#: presort + two-pass bookkeeping costs more than it saves).
SFS_MIN_POINTS = 513


def _dominated_by_any(
    candidates: np.ndarray, matrix: np.ndarray, block_rows: int = 256
) -> np.ndarray:
    """Mask over ``candidates`` rows: True where some ``matrix`` row
    dominates that candidate (``_TIE``-tolerant, vectorized, blocked so
    peak extra memory is ``O(n · block_rows · d)``)."""
    m = candidates.shape[0]
    out = np.zeros(m, dtype=bool)
    dominators = matrix[:, None, :]
    for start in range(0, m, block_rows):
        block = candidates[None, start:start + block_rows, :]
        le = np.all(dominators <= block + _TIE, axis=-1)
        lt = np.any(dominators < block - _TIE, axis=-1)
        out[start:start + block_rows] = (le & lt).any(axis=0)
    return out


def _sfs_front(matrix: np.ndarray, block_rows: int = 256) -> list[int]:
    """Sort-first-skyline (SFS, survey arXiv:1704.01788) for large inputs.

    Points are visited in ascending order of their objective *sum* — a
    dominator's sum is (up to the tie tolerance) never larger than its
    victim's, so almost every point is knocked out by comparing against
    the small set of survivors seen so far instead of the whole input:
    ``O(f·n·d)`` work for a front of size ``f`` versus the plain scan's
    ``O(n²·d)``.

    The tolerant :func:`dominates` is *not* transitive and the sum order
    is only almost-aligned with it (a dominator's sum may exceed the
    victim's by up to ``(d-1)·_TIE``), so the presorted sweep alone is a
    prefilter, not the answer: it only ever discards points with a real
    dominator (always sound), and a final exact pass re-checks every
    survivor against the full input. The result is therefore exactly
    ``{i : no j dominates i}`` — bit-identical to the plain scan and to
    :func:`pareto_front_reference`.
    """
    n = matrix.shape[0]
    order = np.argsort(matrix.sum(axis=1), kind="stable")
    front_idx = np.empty(0, dtype=order.dtype)
    front_rows = np.empty((0, matrix.shape[1]), dtype=matrix.dtype)
    for start in range(0, n, block_rows):
        chunk_idx = order[start:start + block_rows]
        chunk = matrix[chunk_idx]
        alive = ~dominated_mask(chunk, block_rows)
        if front_rows.shape[0]:
            alive &= ~_dominated_by_any(chunk, front_rows, block_rows)
        front_idx = np.concatenate([front_idx, chunk_idx[alive]])
        front_rows = np.concatenate([front_rows, chunk[alive]])
    exact = ~_dominated_by_any(front_rows, matrix, block_rows)
    return sorted(front_idx[exact].tolist())


def pareto_front(vectors: Sequence[np.ndarray]) -> list[int]:
    """Indices of the Pareto-minimal vectors (exact skyline), ascending.

    A point is kept iff no vector in the input dominates it (under the
    ``_TIE``-tolerant :func:`dominates`); duplicates of a skyline vector
    are all kept (none dominates another). Computed with blocked numpy
    broadcasting — ``O(n²d)`` arithmetic but no per-pair Python overhead
    — or, past :data:`SFS_MIN_POINTS`, the sort-first-skyline prefilter
    (:func:`_sfs_front`) that cuts the quadratic term to the front size.
    :func:`pareto_front_reference` keeps the original Kung
    divide-and-conquer sweep as the cross-check the property suite pins
    this implementation against.
    """
    if len(vectors) == 0:
        return []
    matrix = np.asarray([np.asarray(v, dtype=float) for v in vectors])
    if matrix.ndim != 2:
        raise SearchError("pareto_front expects same-length vectors")
    if matrix.shape[1] == 1:
        best = matrix[:, 0].min()
        return np.flatnonzero(matrix[:, 0] <= best + _TIE).tolist()
    if matrix.shape[0] >= SFS_MIN_POINTS:
        return _sfs_front(matrix)
    return np.flatnonzero(~dominated_mask(matrix)).tolist()


def pareto_front_reference(vectors: Sequence[np.ndarray]) -> list[int]:
    """The pre-columnar skyline: Kung's divide & conquer plus tolerance
    repair passes. Kept as the independent reference implementation the
    parity tests compare the vectorized :func:`pareto_front` against.
    """
    if len(vectors) == 0:
        return []
    matrix = np.asarray([np.asarray(v, dtype=float) for v in vectors])
    if matrix.ndim != 2:
        raise SearchError("pareto_front expects same-length vectors")
    if matrix.shape[1] == 1:
        best = matrix[:, 0].min()
        return [i for i in range(len(matrix)) if matrix[i, 0] <= best + _TIE]
    keys = [tuple(matrix[i]) for i in range(len(matrix))]
    order = sorted(range(len(matrix)), key=lambda i: keys[i])
    front = _kung(order, matrix)
    # Divide and conquer can leave duplicates of the same point; also make
    # the result order stable by original index.
    front_set = sorted(set(front))
    # Re-admit exact duplicates of front vectors (mutual non-dominance).
    chosen = {keys[i] for i in front_set}
    result = [i for i in range(len(matrix)) if keys[i] in chosen]
    # The sweep orders by exact coordinates while dominates() grants a
    # _TIE tolerance; points whose leading coordinates differ by less than
    # the tolerance can both survive the sweep even though one
    # tie-dominates the other. A final tolerant filter restores the
    # invariant that front members are mutually non-dominated.
    return [
        i
        for i in result
        if not any(
            j != i and dominates(matrix[j], matrix[i]) for j in result
        )
    ]


def is_skyline(vectors: Sequence[np.ndarray], candidate: Sequence[int]) -> bool:
    """Check the Section 4 skyline conditions for a candidate index set."""
    candidate = list(candidate)
    matrix = [np.asarray(v, dtype=float) for v in vectors]
    for i in candidate:
        for j in candidate:
            if i != j and dominates(matrix[i], matrix[j]):
                return False
    for i in range(len(matrix)):
        if i in set(candidate):
            continue
        if not any(dominates(matrix[j], matrix[i]) or
                   np.allclose(matrix[j], matrix[i]) for j in candidate):
            return False
    return True


# ---------------------------------------------------------------------------
# UPareto: the ε-grid with decisive-measure replacement
# ---------------------------------------------------------------------------


@dataclass
class SkylineGrid:
    """One representative state per ε-grid cell (Algorithm 1's D_F).

    ``update`` implements UPareto lines 21-29: skip states violating an
    upper bound; compute pos(s) over the first |P|−1 measures; keep the
    newcomer only if its cell is empty or it strictly improves the decisive
    measure.
    """

    measures: MeasureSet
    epsilon: float
    cells: dict[tuple[int, ...], State] = field(default_factory=dict)
    skipped_out_of_bounds: int = 0
    replacements: int = 0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise SearchError("epsilon must be positive")
        self._lowers = np.array([m.lower for m in self.measures.grid_measures])
        self._decisive_idx = len(self.measures) - 1

    def update(self, state: State) -> bool:
        """Offer a valuated state; returns True if it entered the grid."""
        if state.perf is None:
            raise SearchError("cannot add an unvaluated state to the grid")
        if not self.measures.within_upper_bounds(state.perf):
            self.skipped_out_of_bounds += 1
            return False
        pos = grid_position(state.perf, self._lowers, self.epsilon)
        state.pos = pos
        incumbent = self.cells.get(pos)
        if incumbent is None:
            self.cells[pos] = state
            return True
        if state.perf[self._decisive_idx] < incumbent.perf[self._decisive_idx] - _TIE:
            self.cells[pos] = state
            self.replacements += 1
            return True
        return False

    def remove(self, state: State) -> None:
        """Drop a state (used by DivMODis' bounded-k replacement)."""
        if state.pos is not None and self.cells.get(state.pos) is state:
            del self.cells[state.pos]

    @property
    def states(self) -> list[State]:
        return list(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    def covers(self, perf: np.ndarray) -> bool:
        """Does some grid member ε-dominate this performance vector?

        This is the Lemma 2 invariant integration tests assert: every
        valuated state must be ε-covered by the output set.
        """
        return any(
            epsilon_dominates(s.perf, perf, self.epsilon) for s in self.cells.values()
        )
