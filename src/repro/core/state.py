"""Search states and their bitmap encoding.

Algorithm 1 associates each state with "a bitmap L to encode if its schema
contains an attribute A in D_U, and if D_s contains a value from its active
domain adom(A)". We encode the bitmap as a Python int (bit ``i`` set ⇔ entry
``i`` active), which makes states hashable, cheap to copy, and lets OpGen be
literally "flip one bit".

A :class:`State` also carries the valuation artifacts the algorithms attach:
the (estimated) normalized performance vector ``perf``, the ε-grid position
``pos`` (Equation 1), parameterized ranges for un-valuated measures used by
BiMODis' correlation pruning, and the level at which it was spawned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..exceptions import SearchError


def bit_count(bits: int) -> int:
    """Number of active entries."""
    return bits.bit_count()


def iter_set_bits(bits: int) -> Iterator[int]:
    """Indices of 1-bits, ascending."""
    index = 0
    while bits:
        if bits & 1:
            yield index
        bits >>= 1
        index += 1


def iter_clear_bits(bits: int, width: int) -> Iterator[int]:
    """Indices of 0-bits below ``width``, ascending."""
    for index in range(width):
        if not (bits >> index) & 1:
            yield index


def flip_bit(bits: int, index: int) -> int:
    """Bits with entry ``index`` toggled."""
    return bits ^ (1 << index)


def bits_to_array(bits: int, width: int) -> np.ndarray:
    """Bitmap as a float 0/1 vector (estimator features, cosine distance)."""
    return np.array([(bits >> i) & 1 for i in range(width)], dtype=float)


def bits_from_labels(labels: set[str], all_labels: tuple[str, ...]) -> int:
    """Bitmap with exactly the entries whose label is in ``labels`` set."""
    unknown = labels - set(all_labels)
    if unknown:
        raise SearchError(f"unknown bitmap labels: {sorted(unknown)}")
    bits = 0
    for i, label in enumerate(all_labels):
        if label in labels:
            bits |= 1 << i
    return bits


@dataclass(slots=True)
class State:
    """One node of the running graph.

    ``perf`` is the normalized |P|-vector once valuated (estimated or
    oracle-measured — the algorithms do not care which, matching the paper's
    estimator abstraction). ``est_low``/``est_high`` are the parameterized
    ranges ``[p̂_l, p̂_u]`` BiMODis infers for not-yet-valuated measures.
    """

    bits: int
    level: int = 0
    perf: np.ndarray | None = None
    pos: tuple[int, ...] | None = None
    est_low: np.ndarray | None = None
    est_high: np.ndarray | None = None
    via: str = ""  # operator description that spawned this state
    parent_bits: int | None = None

    @property
    def valuated(self) -> bool:
        """The paper's "state node s is valuated" predicate."""
        return self.perf is not None

    def key(self) -> int:
        """The state's identity: its bitmap."""
        return self.bits

    def __hash__(self) -> int:
        return hash(self.bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        return self.bits == other.bits

    def __repr__(self) -> str:
        perf = (
            "[" + ", ".join(f"{v:.3f}" for v in self.perf) + "]"
            if self.perf is not None
            else "unvaluated"
        )
        return f"State(bits={self.bits:#x}, level={self.level}, perf={perf})"


def grid_position(
    perf: np.ndarray,
    lowers: np.ndarray,
    epsilon: float,
) -> tuple[int, ...]:
    """Equation 1: ``pos(s) = [⌊log_{1+ε}(P(p_i) / p_l_i)⌋]`` over the first
    |P|−1 measures.

    ``perf`` is the full |P|-vector; ``lowers`` the matching ``p_l`` values
    for the grid measures only (callers slice off the decisive measure).
    """
    if epsilon <= 0:
        raise SearchError("epsilon must be positive for the ε-grid")
    values = np.asarray(perf, dtype=float)[: len(lowers)]
    ratios = np.maximum(values / lowers, 1.0)
    cells = np.floor(np.log(ratios) / np.log1p(epsilon))
    return tuple(int(c) for c in cells)
