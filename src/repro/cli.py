"""Command-line interface: ``python -m repro <command>``.

The paper's workflow — pick a task, run a skyline discovery algorithm,
inspect the ε-skyline set, persist it for downstream use — as a terminal
tool:

.. code-block:: text

    python -m repro tasks                       # list T1–T5
    python -m repro discover --task T1 --algorithm bimodis --budget 60
    python -m repro discover --task T2 --provenance   # + SQL per entry
    python -m repro discover --task T3 --distributed 4
    python -m repro discover --task T3 --json   # machine-readable result
    python -m repro corpus                      # Table 2 analogue
    python -m repro udfs                        # registered UDFs
    python -m repro algorithms                  # available algorithms
    python -m repro suite list                  # registered scenarios
    python -m repro suite --filter tag:smoke --backend thread --jobs 2
    python -m repro suite cache stats           # result-cache inspection
    python -m repro suite cache evict --max-age 86400 --max-entries 100

Service mode (see :mod:`repro.service`) keeps tasks and oracle history
resident between runs:

.. code-block:: text

    python -m repro serve --port 8765 --journal-dir .journal &
    python -m repro submit --scenario smoke-t3-apx --wait
    python -m repro submit --task T3 --algorithm bimodis --budget 20 \
        --timeout 120 --max-oracle-calls 50
    python -m repro status                      # jobs + queue metrics
    python -m repro top                         # live refreshing dashboard
    python -m repro watch job-abc123            # follow one job's events
    python -m repro fetch job-abc123 --output out/
    python -m repro recover --journal-dir .journal --dry-run

Every command is deterministic for a fixed ``--seed``. Output is plain
text (tables) so runs can be diffed; ``--output DIR`` additionally writes
the datasets + ``report.json`` via :func:`repro.report.save_result`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from . import __version__
from .core.algorithms import ALGORITHMS, DiscoveryResult
from .core.transducer import TabularSearchSpace
from .core.udf import DEFAULT_REGISTRY
from .datalake.tasks import TASK_BUILDERS, make_task
from .distributed import DistributedMODis
from .exceptions import ReproError
from .exec import BACKENDS
from .report import build_payload, save_result, save_suite_report
from .sql import state_to_sql


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table (no external dependencies)."""
    cells = [[str(h) for h in headers]] + [
        [
            f"{v:.4f}" if isinstance(v, float) else str(v)
            for v in row
        ]
        for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_tasks(_args: argparse.Namespace) -> int:
    """``repro tasks``: list the paper's evaluation tasks T1-T5."""
    rows = []
    for name in sorted(TASK_BUILDERS):
        task = make_task(name, scale=0.25)
        rows.append(
            (
                name,
                task.kind,
                task.model_name,
                ", ".join(task.measures.names),
                task.primary,
            )
        )
    print(_format_table(
        ["task", "kind", "model", "measures P", "primary"], rows
    ))
    return 0


def cmd_algorithms(_args: argparse.Namespace) -> int:
    """``repro algorithms``: list the algorithm registry."""
    rows = [(key, cls.name, (cls.__doc__ or "").strip().splitlines()[0])
            for key, cls in sorted(ALGORITHMS.items())]
    print(_format_table(["key", "name", "summary"], rows))
    return 0


def cmd_udfs(_args: argparse.Namespace) -> int:
    """``repro udfs``: list the registered operator-enrichment UDFs."""
    rows = [(udf.name, udf.description) for udf in
            sorted(DEFAULT_REGISTRY, key=lambda u: u.name)]
    print(_format_table(["udf", "description"], rows))
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    """``repro corpus``: print the Table 2 corpus statistics."""
    from .datalake.corpus import all_collection_stats

    rows = [
        (stats.name, stats.n_tables, stats.n_columns, stats.n_rows)
        for stats in all_collection_stats(scale=args.scale, seed=args.seed)
    ]
    print(_format_table(["corpus", "#tables", "#columns", "#rows"], rows))
    return 0


def _print_result(result: DiscoveryResult) -> None:
    report = result.report
    print(
        f"{report.algorithm}: {len(result.entries)} skyline dataset(s), "
        f"N={report.n_valuated} valuated, {report.elapsed_seconds:.2f}s, "
        f"terminated by {report.terminated_by}"
    )
    headers = ["dataset", *result.measures.names, "output_size"]
    rows = []
    for entry in result.entries:
        rows.append(
            (
                entry.description,
                *[entry.perf[m] for m in result.measures.names],
                f"{entry.output_size[0]}x{entry.output_size[1]}",
            )
        )
    print(_format_table(headers, rows))
    for key, value in sorted(report.extras.items()):
        print(f"  {key}: {value}")


def cmd_discover(args: argparse.Namespace) -> int:
    """``repro discover``: run one skyline discovery end to end."""
    if args.algorithm not in ALGORITHMS:
        raise ReproError(
            f"unknown algorithm {args.algorithm!r}; have {sorted(ALGORITHMS)}"
        )
    if args.json and args.provenance:
        raise ReproError(
            "--json and --provenance are mutually exclusive (embed SQL "
            "provenance via the report's per-entry 'path' instead)"
        )
    # With --json, stdout carries exactly one JSON document; progress
    # chatter moves to stderr so shell pipelines stay parseable.
    info = (
        (lambda *a: print(*a, file=sys.stderr)) if args.json else print
    )
    task = make_task(args.task, scale=args.scale, seed=args.seed)
    if not args.distributed and (args.backend != "serial" or args.jobs):
        raise ReproError(
            "--backend/--jobs apply to --distributed runs (single-node "
            "algorithms execute in-process)"
        )
    if args.distributed:
        if args.history:
            raise ReproError(
                "--history applies to single-node runs (workers keep "
                "private estimators)"
            )
        runner = DistributedMODis(
            lambda: task.build_config(estimator=args.estimator),
            n_workers=args.distributed,
            epsilon=args.epsilon,
            budget=args.budget,
            max_level=args.max_level,
            backend=args.backend,
            n_jobs=args.jobs,
        )
        result = runner.run(verify=not args.no_verify)
    else:
        from pathlib import Path

        from .core.history import load_test_store, save_test_store

        config = task.build_config(estimator=args.estimator)
        if args.history and Path(args.history).exists():
            config.estimator.store = load_test_store(
                args.history, task.measures
            )
            info(f"warm start: {len(config.estimator.store)} historical "
                 f"tests from {args.history}")
        algorithm = ALGORITHMS[args.algorithm](
            config,
            epsilon=args.epsilon,
            budget=args.budget,
            max_level=args.max_level,
        )
        result = algorithm.run(verify=not args.no_verify)
        if args.history:
            save_test_store(config.estimator.store, args.history,
                            task.measures)
            info(f"saved {len(config.estimator.store)} tests to "
                 f"{args.history}")
    if args.json:
        print(json.dumps(build_payload(result), indent=2))
    else:
        _print_result(result)
    if args.provenance:
        if not isinstance(task.space, TabularSearchSpace):
            print("(provenance SQL is only available for tabular tasks)")
        else:
            for entry in result.entries:
                print(f"\n-- {entry.description}")
                print(state_to_sql(task.space, entry.bits))
    if args.output:
        path = save_result(result, task.space, args.output)
        info(f"\nwrote datasets and {path}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    """``repro suite``: list/batch-run scenarios, or manage the cache."""
    from .scenarios import (
        REGISTRY,
        ResultCache,
        SuiteRunner,
        load_builtin_scenarios,
    )

    if args.action == "cache":
        return _suite_cache(args)
    load_builtin_scenarios()
    selectors = args.filter or []
    scenarios = REGISTRY.filter(*selectors)
    if not scenarios:
        raise ReproError(
            f"no scenarios match {selectors!r}; "
            f"{len(REGISTRY)} registered (try: repro suite list)"
        )
    if args.action == "list":
        rows = [tuple(s.to_row().values()) for s in scenarios]
        print(_format_table(
            ["scenario", "task", "algorithm", "tags", "eps", "N", "scale"],
            rows,
        ))
        return 0

    cache = None if args.no_cache else ResultCache(args.cache_dir or None)
    runner = SuiteRunner(
        registry=REGISTRY, cache=cache, backend=args.backend,
        n_jobs=args.jobs,
    )
    report = runner.run(selectors)
    print(report.markdown_summary())
    if cache is not None:
        print(f"cache: {report.cache_hits}/{report.n_scenarios} hits "
              f"under {cache.directory}")
    for outcome in report.failures:
        print(f"FAILED {outcome.name}: {outcome.error}", file=sys.stderr)
    if args.output:
        path = save_suite_report(
            report.to_payload(), args.output,
            markdown=report.markdown_summary(),
        )
        print(f"wrote {path}")
    return 1 if report.failures else 0


def _suite_cache(args: argparse.Namespace) -> int:
    """``repro suite cache [stats|clear|evict]``: result-cache upkeep."""
    import datetime

    from .scenarios import ResultCache

    cache = ResultCache(args.cache_dir or None)

    def stamp(epoch: float | None) -> str:
        if epoch is None:
            return "—"
        return datetime.datetime.fromtimestamp(epoch).isoformat(
            sep=" ", timespec="seconds"
        )

    if args.cache_action == "stats":
        stats = cache.stats()
        rows = [
            ("directory", stats.directory),
            ("entries", stats.entries),
            ("total_bytes", stats.total_bytes),
            ("oldest", stamp(stats.oldest)),
            ("newest", stamp(stats.newest)),
        ]
        print(_format_table(["field", "value"], rows))
        return 0
    if args.cache_action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.directory}")
        return 0
    # evict
    if args.max_age is None and args.max_entries is None:
        raise ReproError(
            "evict needs --max-age SECONDS and/or --max-entries N "
            "(use 'clear' to drop everything)"
        )
    removed = cache.evict(
        max_age=args.max_age, max_entries=args.max_entries
    )
    stats = cache.stats()
    print(f"evicted {removed} file(s); {stats.entries} entr"
          f"{'y' if stats.entries == 1 else 'ies'} remain "
          f"({stats.total_bytes} bytes)")
    return 0


# ---------------------------------------------------------------------------
# Service commands
# ---------------------------------------------------------------------------


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the skyline-generation service until killed."""
    import logging

    from .logging_util import enable_console_logging
    from .scenarios import ResultCache, load_builtin_scenarios
    from .service import JobJournal, OracleStore, Scheduler, ServiceServer
    from .service.pool import PoolConfig

    enable_console_logging(logging.INFO, json_lines=args.log_json)
    registry = load_builtin_scenarios()
    cache = None if args.no_cache else ResultCache(args.cache_dir or None)
    store = (
        None if args.no_oracle_store
        else OracleStore(args.oracle_store or None)
    )
    journal = JobJournal(args.journal_dir) if args.journal_dir else None
    scheduler = Scheduler(
        registry=registry,
        result_cache=cache,
        oracle_store=store,
        journal=journal,
        backend=args.backend,
        n_workers=args.workers,
        max_retries=args.max_retries,
        scheduler_id=args.scheduler_id or None,
        lease_ttl=args.lease_ttl,
        profile_dir=args.profile_dir or None,
    )
    pool = PoolConfig(
        http_workers=args.http_workers,
        max_pending=args.max_pending,
        admission_queue_depth=args.admission_queue_depth,
    )
    server = ServiceServer(
        scheduler, host=args.host, port=args.port, config=pool
    )
    leases = (
        f"leases on as {scheduler.scheduler_id} "
        f"(ttl {scheduler.lease_ttl:g}s)"
        if args.scheduler_id and journal is not None
        else "leases off"
    )
    print(f"repro service listening on {server.url} "
          f"({args.workers} worker(s), backend={args.backend}, "
          f"{pool.http_workers} http worker(s), "
          f"result cache {'off' if cache is None else cache.directory}, "
          f"oracle store {'off' if store is None else store.directory}, "
          f"journal {'off' if journal is None else journal.directory}, "
          f"{leases})",
          flush=True)
    if journal is not None:
        recovery = scheduler.metrics()["journal"]["recovery"]
        if recovery["replayed"]:
            print(f"journal replay: {recovery['replayed']} job(s) — "
                  f"{recovery['requeued']} requeued, "
                  f"{recovery['retried']} retried, "
                  f"{recovery['failed_retry_budget']} over retry budget, "
                  f"{recovery['restored_terminal']} terminal restored",
                  flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.stop()
    return 0


def _job_row(record: dict) -> tuple:
    summary = record.get("summary") or {}
    return (
        record["id"],
        record["scenario"]["name"],
        record["state"],
        record["priority"],
        "hit" if record.get("cache_hit") else
        ("warm" if record.get("warm_started") else "cold"),
        "—" if record.get("oracle_calls") is None
        else record["oracle_calls"],
        record.get("oracle_calls_saved", 0),
        summary.get("skyline_size", "—"),
    )


def cmd_submit(args: argparse.Namespace) -> int:
    """``repro submit``: send one job to a running service."""
    from .service import ServiceClient

    client = ServiceClient(args.url)
    limits: dict[str, Any] = {
        "timeout": args.timeout,
        "max_oracle_calls": args.max_oracle_calls,
        "profile": args.profile,
    }
    if args.scenario:
        if args.task:
            raise ReproError(
                "--scenario and --task are mutually exclusive "
                "(a submission is a registry reference or an inline spec)"
            )
        record = client.submit(
            scenario=args.scenario,
            priority=args.priority,
            shards=args.shards,
            **limits,
        )
    else:
        if not args.task:
            raise ReproError("submit needs --scenario NAME or --task TASK")
        spec: dict[str, Any] = {
            "task": args.task,
            "algorithm": args.algorithm,
            "epsilon": args.epsilon,
            "budget": args.budget,
            "max_level": args.max_level,
            "scale": args.scale,
            "estimator": args.estimator,
        }
        if args.seed is not None:
            spec["seed"] = args.seed
        record = client.submit(
            priority=args.priority, shards=args.shards, **limits, **spec
        )
    if args.wait:
        record = client.wait(record["id"], timeout=args.wait_timeout)
    if args.json:
        print(json.dumps(record, indent=2))
    else:
        print(_format_table(
            ["job", "scenario", "state", "pri", "start", "oracle", "saved",
             "skyline"],
            [_job_row(record)],
        ))
        if record.get("error"):
            print(f"error: {record['error']}", file=sys.stderr)
    return 0 if record["state"] not in ("failed",) else 1


def cmd_status(args: argparse.Namespace) -> int:
    """``repro status``: one job's record, or all jobs + service metrics."""
    from .service import ServiceClient

    client = ServiceClient(args.url)
    if args.job_id:
        record = client.job(args.job_id)
        print(json.dumps(record, indent=2))
        return 0
    metrics = client.metrics()
    jobs = client.jobs()
    if args.json:
        print(json.dumps({"metrics": metrics, "jobs": jobs}, indent=2))
        return 0
    if jobs:
        print(_format_table(
            ["job", "scenario", "state", "pri", "start", "oracle", "saved",
             "skyline"],
            [_job_row(record) for record in jobs],
        ))
    else:
        print("no jobs submitted yet")
    states = metrics["jobs"]
    cache = metrics["result_cache"]
    oracle = metrics["oracle"]
    print(
        f"\nqueue depth {metrics['queue_depth']} | "
        + " ".join(f"{state}={states[state]}" for state in sorted(states))
        + f" | cache hit rate {cache['hit_rate']:.0%}"
        + f" | oracle calls {oracle['calls_total']} "
        + f"(saved {oracle['calls_saved_total']}, "
        + f"{oracle['warm_starts']} warm starts)"
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: render a job's span tree as an indented timeline."""
    from .obs import format_span_tree
    from .service import ServiceClient

    client = ServiceClient(args.url)
    payload = client.trace(args.job_id)
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    queue_wait = payload.get("queue_wait_seconds")
    run_seconds = payload.get("run_seconds")
    print(f"job {payload['job_id']}  state={payload['state']}"
          + (f"  queue-wait={queue_wait * 1000:.1f}ms"
             if queue_wait is not None else "")
          + (f"  run={run_seconds:.3f}s"
             if run_seconds is not None else ""))
    spans = payload.get("spans")
    if spans:
        print(format_span_tree(spans))
    else:
        print("(no trace recorded — job predates tracing or has not run)")
    for shard in payload.get("shards") or []:
        print(f"\nshard {shard['shard_index']} "
              f"({shard['job_id']}, {shard['state']}):")
        if shard.get("spans"):
            print(format_span_tree(shard["spans"], indent="  "))
        else:
            print("  (no trace recorded)")
    profile = payload.get("profile")
    if profile:
        print(f"\nprofile ({profile.get('path', '?')}):")
        print(profile.get("summary", "").rstrip())
    return 0


def _progress_bar(fraction: float, width: int = 20) -> str:
    """A fixed-width ASCII bar: ``[########............]``."""
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _format_event(event: dict) -> str:
    """One event as a human-readable ``watch`` line."""
    import time as _time

    stamp = _time.strftime("%H:%M:%S", _time.localtime(event.get("ts", 0)))
    data = event.get("data") or {}
    kind = event.get("type", "?")
    extra = []
    if kind == "job.progress":
        if data.get("generation") is not None:
            extra.append(f"gen={data['generation']}")
        elif data.get("level") is not None:
            extra.append(f"level={data['level']}")
        if data.get("n_valuated") is not None and data.get("budget"):
            extra.append(f"valuated={data['n_valuated']}/{data['budget']}")
        if data.get("front_size") is not None:
            extra.append(f"front={data['front_size']}")
    elif kind == "job.partial":
        extra.append(f"front_size={data.get('front_size')}")
    elif kind in ("job.done", "job.failed", "job.cancelled"):
        summary = data.get("summary") or {}
        if summary.get("skyline_size") is not None:
            extra.append(f"skyline={summary['skyline_size']}")
        if data.get("run_seconds"):
            extra.append(f"run={data['run_seconds']:.2f}s")
        if data.get("error"):
            extra.append(f"error={data['error']}")
    elif kind == "job.submitted":
        if data.get("shard_index") is not None:
            extra.append(f"shard={data['shard_index']}")
        elif data.get("shards"):
            extra.append(f"shards={data['shards']}")
    job_id = event.get("job_id", "")
    suffix = ("  " + " ".join(extra)) if extra else ""
    return f"{stamp}  {kind:<14} {job_id}{suffix}"


def cmd_watch(args: argparse.Namespace) -> int:
    """``repro watch``: follow one job's event stream to its end.

    Prints every event for the job — shard children included — as it
    lands, long-polling ``GET /v1/events`` between batches. Exits 0 when
    the job ends DONE, 1 when FAILED/CANCELLED.
    """
    from .service import ServiceClient

    client = ServiceClient(args.url)
    record = client.job(args.job_id)
    if record["state"] in ("done", "failed", "cancelled"):
        print(f"job {args.job_id} already {record['state']}")
        return 0 if record["state"] == "done" else 1
    final = None
    try:
        for event in client.watch(
            args.job_id, timeout=args.timeout or None
        ):
            if args.json:
                print(json.dumps(event), flush=True)
            else:
                print(_format_event(event), flush=True)
            if (
                event.get("type") in ("job.done", "job.failed",
                                      "job.cancelled")
                and event.get("job_id") == args.job_id
            ):
                final = event["type"]
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130
    if final is None:
        # Stream ended without a terminal event (timeout, or the event
        # aged out of the ring): the job record is the ground truth.
        state = client.job(args.job_id)["state"]
        print(f"stream ended; job {args.job_id} is {state}",
              file=sys.stderr)
        return 0 if state == "done" else 1
    return 0 if final == "job.done" else 1


def _top_frame(client, max_rows: int = 15) -> str:
    """One rendered ``repro top`` frame (dashboard snapshot)."""
    import time as _time

    from .exceptions import ServiceError

    health = client.health()
    jobs = client.jobs()
    workers = health.get("workers") or {}
    events = health.get("events") or {}
    lines = [
        f"repro top — {_time.strftime('%H:%M:%S')}  "
        f"queue={health.get('queue_depth', '?')}  "
        f"workers={workers.get('busy', '?')}/{workers.get('total', '?')} "
        f"({workers.get('saturation', 0.0):.0%} busy)  "
        f"ready={'yes' if health.get('ready') else 'NO'}",
        f"events: last_seq={events.get('last_seq', '?')} "
        f"ring={events.get('size', '?')}/{events.get('capacity', '?')}  "
        f"journal_lag="
        + (
            f"{(health.get('journal_detail') or {}).get('append_lag_seconds'):.1f}s"
            if (health.get("journal_detail") or {}).get(
                "append_lag_seconds"
            ) is not None
            else "—"
        ),
        "",
    ]
    rows = []
    for record in jobs[-max_rows:]:
        state = record["state"]
        bar = ""
        front: Any = ""
        if state == "running":
            try:
                prog = client.progress(record["id"])
                counters = prog.get("progress") or {}
                n = counters.get("n_valuated") or 0
                budget = counters.get("budget") or 0
                if budget:
                    bar = _progress_bar(n / budget) + f" {n}/{budget}"
                front = (
                    prog.get("partial_front_size")
                    or counters.get("front_size")
                    or ""
                )
            except ServiceError:
                pass
        elif state == "done":
            bar = _progress_bar(1.0)
            front = (record.get("summary") or {}).get("skyline_size", "")
        rows.append([
            record["id"],
            record["scenario"]["name"],
            state,
            bar,
            front,
        ])
    if rows:
        lines.append(_format_table(
            ["job", "scenario", "state", "progress", "front"], rows
        ))
    else:
        lines.append("no jobs submitted yet")
    if len(jobs) > max_rows:
        lines.append(f"(… {len(jobs) - max_rows} older jobs not shown)")
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: a live, refreshing service dashboard.

    Redraws every ``--interval`` seconds: queue depth, worker occupancy,
    event-stream cursor, and a per-job table with progress bars for
    running jobs. ``--iterations N`` stops after N frames (useful in
    scripts and tests; 0 means run until interrupted).
    """
    import time as _time

    from .service import ServiceClient

    client = ServiceClient(args.url)
    frames = 0
    try:
        while True:
            frame = _top_frame(client)
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            frames += 1
            if args.iterations and frames >= args.iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


def cmd_fetch(args: argparse.Namespace) -> int:
    """``repro fetch``: download one finished job's full result."""
    from .report import save_job_record
    from .service import ServiceClient

    client = ServiceClient(args.url)
    record = client.result(args.job_id)
    if args.output:
        path = save_job_record(record, args.output)
        print(f"wrote {path}", file=sys.stderr)
    if args.json or not args.output:
        print(json.dumps(record, indent=2))
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """``repro recover``: offline journal inspection and compaction.

    Replays a journal directory without booting a service and reports,
    per job, what a ``repro serve --journal-dir`` restart would do with
    it; without ``--dry-run`` the journal is also compacted to a single
    snapshot segment.
    """
    from .report import save_recovery_report
    from .service import JobJournal, JobState

    journal = JobJournal(args.journal_dir)
    summary = journal.replay()
    rows = []
    actions = {"requeue": 0, "retry": 0, "fail-retry-budget": 0, "keep": 0}
    # Mirrors Scheduler._recover's policy (a crash charges one retry,
    # over-budget fails). Dedup re-linking of identical fingerprints is
    # deliberately not modeled offline — a "requeue" here may become a
    # follower of another requeued job at actual boot.
    for snapshot in summary.jobs.values():
        state = snapshot.get("state", "?")
        retries = snapshot.get("retries", 0) or 0
        if state == JobState.QUEUED:
            action = "requeue"
        elif state == JobState.RUNNING:
            action = (
                "retry" if retries + 1 <= args.max_retries
                else "fail-retry-budget"
            )
        else:
            action = "keep"
        actions[action] += 1
        rows.append({
            "id": snapshot.get("id", "?"),
            "scenario": snapshot.get("spec", {}).get("name", "?"),
            "state": state,
            "retries": retries,
            "action": action,
        })
    report = {
        "journal": journal.stats(),
        "records": summary.records,
        "skipped_lines": summary.skipped,
        "torn_tail": summary.torn_tail,
        "orphaned": summary.orphaned,
        "by_state": summary.by_state(),
        "actions": actions,
        "jobs": rows,
        "max_retries": args.max_retries,
        "dry_run": bool(args.dry_run),
    }
    compacted = None
    if not args.dry_run:
        # Offline-only: compaction replays then deletes the old
        # segments, so a record a *live* service appends in between
        # would be destroyed. There is no cross-process lock — the
        # operator must stop the service first (or use --dry-run).
        print(
            "warning: compacting rewrites this journal — make sure no "
            "'repro serve' is using it, or records may be lost",
            file=sys.stderr,
        )
        compacted = journal.compact()
        report["compacted_records"] = compacted
    if args.output:
        path = save_recovery_report(report, args.output)
        print(f"wrote {path}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    if rows:
        print(_format_table(
            ["job", "scenario", "state", "retries", "on restart"],
            [[r["id"], r["scenario"], r["state"], r["retries"], r["action"]]
             for r in rows],
        ))
    else:
        print(f"no jobs recorded in {journal.directory}")
    print(
        f"\n{summary.records} record(s) across "
        f"{summary.segments} segment(s)"
        + (f", {summary.skipped} skipped" if summary.skipped else "")
        + (", torn final line dropped" if summary.torn_tail else "")
        + (f", {summary.orphaned} orphaned" if summary.orphaned else "")
        + " | restart would: "
        + ", ".join(f"{verb} {count}" for verb, count in actions.items()
                    if count)
    )
    if compacted is not None:
        print(f"compacted journal to 1 segment ({compacted} snapshot(s))")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MODis: multi-objective skyline dataset generation",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tasks", help="list the paper's evaluation tasks T1-T5")
    sub.add_parser("algorithms", help="list available discovery algorithms")
    sub.add_parser("udfs", help="list registered operator-enrichment UDFs")

    corpus = sub.add_parser("corpus", help="print corpus characteristics "
                                           "(Table 2 analogue)")
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument("--scale", type=float, default=0.25)

    discover = sub.add_parser(
        "discover", help="run skyline data discovery on a task"
    )
    discover.add_argument("--task", required=True,
                          choices=sorted(TASK_BUILDERS))
    discover.add_argument("--algorithm", default="bimodis",
                          help="one of: " + ", ".join(sorted(ALGORITHMS)))
    discover.add_argument("--epsilon", type=float, default=0.1,
                          help="ε of the ε-skyline approximation")
    discover.add_argument("--budget", type=int, default=80,
                          help="N, the maximum number of valuated states")
    discover.add_argument("--max-level", type=int, default=5,
                          help="maxl, the maximum path length")
    discover.add_argument("--scale", type=float, default=0.5,
                          help="task corpus scale factor")
    discover.add_argument("--seed", type=int, default=None)
    discover.add_argument("--estimator", default="mogb",
                          choices=("mogb", "mogb-hist", "oracle"))
    discover.add_argument("--distributed", type=int, default=0,
                          metavar="WORKERS",
                          help="run the distributed coordinator instead")
    discover.add_argument("--backend", default="serial",
                          choices=sorted(BACKENDS),
                          help="execution backend for --distributed workers")
    discover.add_argument("--jobs", type=int, default=0, metavar="N",
                          help="concurrent backend jobs (0 = one per CPU)")
    discover.add_argument("--provenance", action="store_true",
                          help="print the SQL provenance query per entry")
    discover.add_argument("--no-verify", action="store_true",
                          help="skip oracle re-scoring of the skyline")
    discover.add_argument("--output", default="",
                          help="directory to persist datasets + report.json")
    discover.add_argument("--history", default="",
                          help="JSON test-store path: warm-start from it if "
                               "present, save the run's tests back to it")
    discover.add_argument("--json", action="store_true",
                          help="print the machine-readable DiscoveryResult "
                               "JSON on stdout (progress goes to stderr)")

    suite = sub.add_parser(
        "suite", help="batch-run registered scenarios (see repro.scenarios)"
    )
    suite.add_argument("action", nargs="?", default="run",
                       choices=("run", "list", "cache"),
                       help="run the selected scenarios (default), list "
                            "them, or manage the result cache")
    suite.add_argument("cache_action", nargs="?", default="stats",
                       choices=("stats", "clear", "evict"),
                       help="with 'cache': print stats (default), clear "
                            "everything, or evict by age/count")
    suite.add_argument("--max-age", type=float, default=None,
                       metavar="SECONDS",
                       help="evict: drop entries cached longer ago than "
                            "this many seconds")
    suite.add_argument("--max-entries", type=int, default=None, metavar="N",
                       help="evict: keep at most the N newest entries "
                            "(0 keeps none)")
    suite.add_argument("--filter", action="append", default=[],
                       metavar="SELECTOR",
                       help="tag:NAME, task:T1, algorithm:KEY, or a name "
                            "glob; repeat to intersect, comma for OR")
    suite.add_argument("--backend", default="serial",
                       choices=sorted(BACKENDS),
                       help="execution backend fanning scenarios out")
    suite.add_argument("--jobs", type=int, default=0, metavar="N",
                       help="concurrent scenarios (0 = one per CPU)")
    suite.add_argument("--cache-dir", default="",
                       help="result-cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro/scenarios)")
    suite.add_argument("--no-cache", action="store_true",
                       help="always re-run; neither read nor write the cache")
    suite.add_argument("--output", default="",
                       help="directory for suite_report.json + "
                            "suite_report.md")

    serve = sub.add_parser(
        "serve", help="run the skyline-generation service (see repro.service)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listening port (0 = let the OS pick)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent job-worker threads")
    serve.add_argument("--backend", default="serial",
                       choices=sorted(BACKENDS),
                       help="how each worker executes its job ('process' "
                            "forks a child per job for crash isolation)")
    serve.add_argument("--cache-dir", default="",
                       help="result-cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro/scenarios)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable result-cache dedup; every job runs")
    serve.add_argument("--oracle-store", default="",
                       help="oracle-store directory (default: "
                            "$REPRO_ORACLE_STORE_DIR or "
                            "~/.cache/repro/oracle-stores)")
    serve.add_argument("--no-oracle-store", action="store_true",
                       help="disable oracle warm-starts; every job "
                            "retrains from scratch")
    serve.add_argument("--journal-dir", default="",
                       help="write-ahead journal directory; on boot the "
                            "scheduler replays it, restoring terminal "
                            "records and re-queuing interrupted jobs "
                            "(empty: durability off)")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="re-executions granted to a job interrupted "
                            "by a crash before it fails with "
                            "reason=retry-budget")
    serve.add_argument("--scheduler-id", default="",
                       help="stable lease identity; set (with "
                            "--journal-dir) to let several scheduler "
                            "processes share one journal dir — each "
                            "claims jobs under a lease and a survivor "
                            "adopts a dead peer's expired leases "
                            "(empty: leases off)")
    serve.add_argument("--lease-ttl", type=float, default=30.0,
                       help="seconds a job lease stays live without "
                            "renewal; a dead scheduler's jobs become "
                            "adoptable after this long")
    serve.add_argument("--profile-dir", default="",
                       help="directory for per-job cProfile dumps; jobs "
                            "submitted with profile=true store "
                            "<job-id>.pstats here and surface the summary "
                            "via GET /v1/jobs/{id}/trace (empty: "
                            "profiling off)")
    serve.add_argument("--log-json", action="store_true",
                       help="emit one JSON object per log line "
                            "(ts/level/logger/message + job_id/"
                            "shard_index/scheduler_id correlation fields)")
    serve.add_argument("--http-workers", type=int, default=8,
                       help="fixed HTTP request-handling threads; "
                            "connections beyond the pool park in a "
                            "selector, never a thread each")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="readable connections allowed to wait for an "
                            "HTTP worker; beyond this the server answers "
                            "429 and closes (backpressure)")
    serve.add_argument("--admission-queue-depth", type=int, default=256,
                       help="job-queue depth at which POST /v1/jobs "
                            "answers 429 + Retry-After instead of "
                            "enqueueing (admission control)")

    submit = sub.add_parser(
        "submit", help="submit one job to a running service"
    )
    submit.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service base URL")
    submit.add_argument("--scenario", default="",
                        help="registered scenario name (see: repro suite "
                             "list); exclusive with --task")
    submit.add_argument("--task", default="",
                        help="inline job: task name (T1..T5)")
    submit.add_argument("--algorithm", default="bimodis")
    submit.add_argument("--epsilon", type=float, default=0.1)
    submit.add_argument("--budget", type=int, default=80)
    submit.add_argument("--max-level", type=int, default=5)
    submit.add_argument("--scale", type=float, default=0.5)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--estimator", default="mogb",
                        choices=("mogb", "mogb-hist", "oracle"))
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs sooner (FIFO within a priority)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job reaches a terminal state")
    submit.add_argument("--timeout", type=float, default=None,
                        help="per-job wall-clock limit in seconds; the "
                             "job fails with reason=timeout when exceeded")
    submit.add_argument("--max-oracle-calls", type=int, default=None,
                        help="per-job oracle-call quota; the job fails "
                             "with reason=quota but keeps its partial "
                             "oracle truth for the next attempt")
    submit.add_argument("--shards", type=int, default=None,
                        help="scatter the search across N shard jobs and "
                             "merge their skylines into this job's result")
    submit.add_argument("--profile", action="store_true",
                        help="run the job under cProfile server-side "
                             "(needs 'repro serve --profile-dir'); see "
                             "'repro trace' for the summary")
    submit.add_argument("--wait-timeout", type=float, default=600.0,
                        help="--wait polling timeout in seconds")
    submit.add_argument("--json", action="store_true",
                        help="print the full job record as JSON")

    recover = sub.add_parser(
        "recover", help="inspect (and optionally compact) a job journal "
                        "offline — what would a restart restore? "
                        "Compaction requires the service to be stopped; "
                        "--dry-run is always safe."
    )
    recover.add_argument("--journal-dir", required=True,
                         help="journal directory written by "
                              "'repro serve --journal-dir'")
    recover.add_argument("--max-retries", type=int, default=2,
                         help="retry budget to evaluate interrupted jobs "
                              "against (matches the serve flag)")
    recover.add_argument("--dry-run", action="store_true",
                         help="read-only: report without compacting the "
                              "journal")
    recover.add_argument("--json", action="store_true",
                         help="print the replay report as JSON")
    recover.add_argument("--output", default="",
                         help="directory for recovery_report.json")

    status = sub.add_parser(
        "status", help="list service jobs and metrics (or one job's record)"
    )
    status.add_argument("job_id", nargs="?", default="",
                        help="job id for a single-job detail view")
    status.add_argument("--url", default="http://127.0.0.1:8765")
    status.add_argument("--json", action="store_true",
                        help="print metrics + jobs as one JSON document")

    trace = sub.add_parser(
        "trace", help="render a job's lifecycle trace (queue-wait, run, "
                      "per-phase spans) as an indented duration tree"
    )
    trace.add_argument("job_id")
    trace.add_argument("--url", default="http://127.0.0.1:8765")
    trace.add_argument("--json", action="store_true",
                       help="print the raw trace payload as JSON")

    watch = sub.add_parser(
        "watch", help="follow one job's live event stream (progress, "
                      "partial skylines, shard children) to its end"
    )
    watch.add_argument("job_id")
    watch.add_argument("--url", default="http://127.0.0.1:8765")
    watch.add_argument("--timeout", type=float, default=300.0,
                       help="give up after this many seconds "
                            "(0 = follow forever)")
    watch.add_argument("--json", action="store_true",
                       help="print raw events as JSON lines")

    top = sub.add_parser(
        "top", help="live refreshing dashboard: queue depth, worker "
                    "occupancy, per-job progress bars"
    )
    top.add_argument("--url", default="http://127.0.0.1:8765")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between redraws")
    top.add_argument("--iterations", type=int, default=0,
                     help="stop after N frames (0 = until interrupted)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of clearing the screen")

    fetch = sub.add_parser(
        "fetch", help="download a finished job's full result payload"
    )
    fetch.add_argument("job_id")
    fetch.add_argument("--url", default="http://127.0.0.1:8765")
    fetch.add_argument("--output", default="",
                       help="directory for job_record.json")
    fetch.add_argument("--json", action="store_true",
                       help="also print the record when --output is given")
    return parser


_COMMANDS = {
    "tasks": cmd_tasks,
    "algorithms": cmd_algorithms,
    "udfs": cmd_udfs,
    "corpus": cmd_corpus,
    "discover": cmd_discover,
    "suite": cmd_suite,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "trace": cmd_trace,
    "watch": cmd_watch,
    "top": cmd_top,
    "fetch": cmd_fetch,
    "recover": cmd_recover,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
