"""Select / project / union building blocks (SPJ without the J).

These are the primitive queries the paper's ⊕/⊖ operators compile into
("These operators can be expressed by SPJ queries", Section 3). Joins live
in :mod:`repro.relational.join`; the ⊕/⊖ operators themselves in
:mod:`repro.relational.augment`.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import SchemaError
from .expressions import Predicate
from .table import Table


def select(table: Table, predicate: Predicate) -> Table:
    """σ_predicate(table): rows satisfying the predicate."""
    return table.filter(predicate)


def reject(table: Table, predicate: Predicate) -> Table:
    """Rows *not* satisfying the predicate.

    Note the asymmetry with :func:`select` under nulls: a null cell fails
    the literal, so rows with nulls on the tested attribute are *kept* here.
    This matches the paper's Reduct, which "selects ... the tuples that
    satisfy the selection condition ... and removes all such tuples".
    """
    return table.filter(lambda row: not predicate(row))


def project(table: Table, names: Sequence[str]) -> Table:
    """π_names(table)."""
    return table.project(names)


def union_all(tables: Sequence[Table], name: str = "") -> Table:
    """Outer union of all tables under their universal schema."""
    if not tables:
        raise SchemaError("union of zero tables is undefined")
    result = tables[0]
    for table in tables[1:]:
        result = result.concat_rows(table)
    if name:
        result = result.with_name(name)
    return result
