"""Spatial joins: tuple-level similarity augmentation.

Example 3 of the paper builds its running graph with spatial augmentation:
"The augmentation ⊕ uses spatial joins [38], a common query that joins
tables with tuple-level spatial similarity" — the water table joins the
basin table by proximity of their monitoring stations, not by an equality
key. This module supplies that operator for the relational substrate:

* :class:`GridIndex` — a uniform-grid spatial hash over 2-D points with
  radius and nearest-neighbour queries (the main-memory design of [38]);
* :func:`spatial_join` — distance join: pairs of rows whose coordinates
  are within ``radius`` of each other;
* :func:`nearest_join` — each left row paired with its nearest right row
  (optionally within a maximum radius);
* :func:`spatial_augment` — the ⊕ operator with a spatial predicate: keep
  every base row, attach the attributes of the closest matching tuple,
  null where nothing is near (outer semantics, like the paper's Augment).

Coordinates live in two numeric columns; rows with a null coordinate never
match (the same null semantics as the equi-joins in
:mod:`repro.relational.join`). Distances are Euclidean by default, or
great-circle kilometres with ``metric="haversine"`` for lon/lat data.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Iterator, Sequence

from ..exceptions import JoinError, SchemaError
from .schema import Attribute, NUMERIC, Schema
from .table import Table

_EARTH_RADIUS_KM = 6371.0088

#: Supported distance metrics.
EUCLIDEAN = "euclidean"
HAVERSINE = "haversine"
_METRICS = (EUCLIDEAN, HAVERSINE)


def euclidean_distance(x1: float, y1: float, x2: float, y2: float) -> float:
    """Plain 2-D Euclidean distance."""
    return math.hypot(x1 - x2, y1 - y2)


def haversine_distance(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in kilometres between (lon, lat) degree pairs."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def _distance_fn(metric: str):
    if metric == EUCLIDEAN:
        return euclidean_distance
    if metric == HAVERSINE:
        return haversine_distance
    raise JoinError(f"unknown metric {metric!r}; use one of {_METRICS}")


def _coordinates(table: Table, coords: tuple[str, str]) -> list[tuple[float, float] | None]:
    """Per-row (x, y) pairs; ``None`` where either coordinate is null."""
    x_name, y_name = coords
    for name in (x_name, y_name):
        attr = table.schema[name]
        if not attr.is_numeric:
            raise SchemaError(f"coordinate attribute {name!r} must be numeric")
    xs = table._column_ref(x_name)
    ys = table._column_ref(y_name)
    out: list[tuple[float, float] | None] = []
    for x, y in zip(xs, ys):
        if x is None or y is None:
            out.append(None)
        else:
            out.append((float(x), float(y)))
    return out


class GridIndex:
    """A uniform-grid spatial hash over 2-D points.

    Points are bucketed into square cells of side ``cell_size``; a radius
    query only inspects the cells overlapping the query disc, and a
    nearest query expands outward ring by ring. For the haversine metric
    the grid operates on raw (lon, lat) degrees, so ``cell_size`` is in
    degrees while query radii are in kilometres — the index converts with
    a conservative degrees-per-km factor so no candidate is missed.
    """

    def __init__(
        self,
        points: Sequence[tuple[float, float] | None],
        cell_size: float,
        metric: str = EUCLIDEAN,
    ):
        if cell_size <= 0:
            raise JoinError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self.metric = metric
        self._distance = _distance_fn(metric)
        self._points = list(points)
        self._cells: dict[tuple[int, int], list[int]] = defaultdict(list)
        for i, point in enumerate(self._points):
            if point is None:
                continue
            self._cells[self._cell_of(point)].append(i)

    def _cell_of(self, point: tuple[float, float]) -> tuple[int, int]:
        return (
            math.floor(point[0] / self.cell_size),
            math.floor(point[1] / self.cell_size),
        )

    def _radius_in_grid_units(self, radius: float, lat: float = 0.0) -> float:
        """Convert a query radius to grid-coordinate units.

        For haversine the grid is in raw degrees while the radius is in
        km. Longitude degrees *shrink* by cos(lat), so a km buys more
        longitude-degrees away from the equator — and an in-radius point
        can sit anywhere inside the disc, so the widening must use the
        *poleward-most* latitude the disc reaches (its worst shrink),
        not the query's own. Returns ``inf`` when that latitude is so
        close to a pole that no per-cell window is safe; the caller then
        falls back to scanning every occupied cell.
        """
        if self.metric == HAVERSINE:
            reach_lat = min(90.0, abs(lat) + radius / 111.2)
            shrink = math.cos(math.radians(reach_lat))
            if shrink < 0.05:
                return math.inf
            return radius / (111.2 * shrink)
        return radius

    def _cells_in_ring(self, center: tuple[int, int], ring: int) -> Iterator[tuple[int, int]]:
        cx, cy = center
        if ring == 0:
            yield (cx, cy)
            return
        for dx in range(-ring, ring + 1):
            yield (cx + dx, cy - ring)
            yield (cx + dx, cy + ring)
        for dy in range(-ring + 1, ring):
            yield (cx - ring, cy + dy)
            yield (cx + ring, cy + dy)

    @property
    def num_points(self) -> int:
        """Number of indexable (non-null) points."""
        return sum(len(v) for v in self._cells.values())

    def query_radius(self, point: tuple[float, float], radius: float) -> list[int]:
        """Indices of points within ``radius`` of ``point`` (inclusive)."""
        if radius < 0:
            raise JoinError("radius must be non-negative")
        center = self._cell_of(point)
        reach = self._radius_in_grid_units(radius, lat=point[1])
        if not math.isfinite(reach):
            # The disc reaches (nearly) a pole, where longitude degrees
            # degenerate and no per-cell ring bound is safe: scan every
            # occupied cell and let the exact distance check decide.
            rings = self._max_ring(center)
        else:
            # One ring beyond ceil(reach/cell): the disc is centered on
            # the query point, not its cell's origin, so it can overlap
            # one more cell column/row than the cell-count bound
            # suggests (e.g. an origin just below a cell boundary). The
            # exact distance check below keeps the answer tight.
            rings = math.ceil(reach / self.cell_size) + 1
        hits: list[int] = []
        for ring in range(rings + 1):
            for cell in self._cells_in_ring(center, ring):
                for i in self._cells.get(cell, ()):
                    other = self._points[i]
                    if self._distance(*point, *other) <= radius:
                        hits.append(i)
        return sorted(hits)

    def nearest(
        self, point: tuple[float, float], k: int = 1, max_radius: float | None = None
    ) -> list[tuple[int, float]]:
        """The ``k`` nearest points as (index, distance), closest first.

        Expands the ring search until the best ``k`` found so far provably
        beat anything in un-searched rings; ties break on index.
        """
        if k < 1:
            raise JoinError("k must be >= 1")
        if not self._cells:
            return []
        center = self._cell_of(point)
        max_ring = self._max_ring(center)
        found: list[tuple[float, int]] = []
        for ring in range(max_ring + 1):
            for cell in self._cells_in_ring(center, ring):
                for i in self._cells.get(cell, ()):
                    d = self._distance(*point, *self._points[i])
                    if max_radius is not None and d > max_radius:
                        continue
                    found.append((d, i))
            if len(found) >= k:
                # Everything in ring r is at least (r-1)*cell_size away in
                # grid units; stop once the kth best beats that bound.
                found.sort()
                kth = found[k - 1][0]
                next_ring_bound = ring * self.cell_size
                if self.metric == HAVERSINE:
                    # A farther ring can still hold a nearer point when
                    # the separation is longitudinal at high latitude:
                    # convert with the worst longitude shrink reachable
                    # in the next ring's latitude band (ring cells span
                    # at most ±(ring+1)·cell of latitude). Near a pole
                    # the factor hits 0 and the early exit disables for
                    # that ring — tight at low latitudes, safe at high.
                    band_lat = min(
                        90.0,
                        abs(point[1]) + (ring + 1) * self.cell_size,
                    )
                    next_ring_bound *= 111.2 * max(
                        math.cos(math.radians(band_lat)), 0.0
                    )
                if kth <= next_ring_bound:
                    break
        found.sort()
        return [(i, d) for d, i in found[:k]]

    def _max_ring(self, center: tuple[int, int]) -> int:
        """Rings needed to cover every occupied cell from ``center``."""
        reach = 0
        for cx, cy in self._cells:
            reach = max(reach, abs(cx - center[0]), abs(cy - center[1]))
        return reach


def _suffix_collisions(left: Table, right: Table, suffix: str) -> Table:
    """Rename right-side attributes that collide with left names."""
    mapping = {
        name: f"{name}{suffix}"
        for name in right.schema.names
        if name in left.schema
    }
    return right.rename(mapping) if mapping else right


def _emit_pairs(
    left: Table,
    right: Table,
    pairs: Sequence[tuple[int, int | None, float | None]],
    distance_as: str | None,
    name: str,
) -> Table:
    """Materialize (left_row, right_row?, distance?) triples into a table."""
    attrs = list(left.schema.attributes) + list(right.schema.attributes)
    if distance_as is not None:
        attrs.append(Attribute(distance_as, NUMERIC))
    schema = Schema(attrs)
    out: dict[str, list[Any]] = {n: [] for n in schema.names}
    for li, ri, dist in pairs:
        for n in left.schema.names:
            out[n].append(left._column_ref(n)[li])
        for n in right.schema.names:
            out[n].append(right._column_ref(n)[ri] if ri is not None else None)
        if distance_as is not None:
            out[distance_as].append(dist)
    return Table(schema, out, name=name)


def spatial_join(
    left: Table,
    right: Table,
    left_coords: tuple[str, str],
    right_coords: tuple[str, str] | None = None,
    radius: float = 1.0,
    metric: str = EUCLIDEAN,
    suffix: str = "_r",
    distance_as: str | None = None,
    name: str = "",
) -> Table:
    """Distance join: all (left, right) row pairs within ``radius``.

    Right-side attributes whose names collide with the left schema are
    suffixed. With ``distance_as`` set, the pair distance is emitted as an
    extra numeric column (useful provenance for the skyline search).
    """
    if radius < 0:
        raise JoinError("radius must be non-negative")
    right_coords = right_coords or left_coords
    left_points = _coordinates(left, left_coords)
    right_renamed = _suffix_collisions(left, right, suffix)
    renamed_coords = tuple(
        f"{c}{suffix}" if c in left.schema else c for c in right_coords
    )
    right_points = _coordinates(right_renamed, renamed_coords)  # type: ignore[arg-type]
    cell = max(radius, 1e-9)
    if metric == HAVERSINE:
        cell = max(radius / 111.2, 1e-9)
    index = GridIndex(right_points, cell_size=cell, metric=metric)
    pairs: list[tuple[int, int | None, float | None]] = []
    distance = _distance_fn(metric)
    for i, point in enumerate(left_points):
        if point is None:
            continue
        for j in index.query_radius(point, radius):
            pairs.append((i, j, distance(*point, *right_points[j])))
    return _emit_pairs(left, right_renamed, pairs, distance_as, name or left.name)


def nearest_join(
    left: Table,
    right: Table,
    left_coords: tuple[str, str],
    right_coords: tuple[str, str] | None = None,
    k: int = 1,
    max_radius: float | None = None,
    metric: str = EUCLIDEAN,
    suffix: str = "_r",
    distance_as: str | None = None,
    name: str = "",
) -> Table:
    """Each left row joined to its ``k`` nearest right rows.

    Left rows with null coordinates, or with no right row within
    ``max_radius``, are dropped (inner semantics); use
    :func:`spatial_augment` to keep them.
    """
    right_coords = right_coords or left_coords
    left_points = _coordinates(left, left_coords)
    right_renamed = _suffix_collisions(left, right, suffix)
    renamed_coords = tuple(
        f"{c}{suffix}" if c in left.schema else c for c in right_coords
    )
    right_points = _coordinates(right_renamed, renamed_coords)  # type: ignore[arg-type]
    cell = _default_cell(right_points, max_radius, metric)
    index = GridIndex(right_points, cell_size=cell, metric=metric)
    pairs: list[tuple[int, int | None, float | None]] = []
    for i, point in enumerate(left_points):
        if point is None:
            continue
        for j, dist in index.nearest(point, k=k, max_radius=max_radius):
            pairs.append((i, j, dist))
    return _emit_pairs(left, right_renamed, pairs, distance_as, name or left.name)


def spatial_augment(
    base: Table,
    other: Table,
    base_coords: tuple[str, str],
    other_coords: tuple[str, str] | None = None,
    radius: float = 1.0,
    metric: str = EUCLIDEAN,
    suffix: str = "_r",
    name: str = "",
) -> Table:
    """The paper's ⊕ with a spatial predicate (Example 3's augmentation).

    Keeps *every* base row; attaches the attributes of the nearest ``other``
    row within ``radius``, filling nulls where nothing is near — exactly the
    Augment contract ("fill the rest cells with null for unknown values")
    with tuple-level spatial similarity in place of the equality literal.
    """
    other_coords = other_coords or base_coords
    base_points = _coordinates(base, base_coords)
    other_renamed = _suffix_collisions(base, other, suffix)
    renamed_coords = tuple(
        f"{c}{suffix}" if c in base.schema else c for c in other_coords
    )
    other_points = _coordinates(other_renamed, renamed_coords)  # type: ignore[arg-type]
    cell = max(radius, 1e-9)
    if metric == HAVERSINE:
        cell = max(radius / 111.2, 1e-9)
    index = GridIndex(other_points, cell_size=cell, metric=metric)
    pairs: list[tuple[int, int | None, float | None]] = []
    for i, point in enumerate(base_points):
        if point is None:
            pairs.append((i, None, None))
            continue
        nearest = index.nearest(point, k=1, max_radius=radius)
        if nearest:
            j, dist = nearest[0]
            pairs.append((i, j, dist))
        else:
            pairs.append((i, None, None))
    return _emit_pairs(base, other_renamed, pairs, None, name or base.name)


def _default_cell(
    points: Sequence[tuple[float, float] | None],
    max_radius: float | None,
    metric: str,
) -> float:
    """A sensible grid cell size when no radius constrains the search."""
    if max_radius is not None and max_radius > 0:
        if metric == HAVERSINE:
            return max(max_radius / 111.2, 1e-9)
        return max_radius
    live = [p for p in points if p is not None]
    if len(live) < 2:
        return 1.0
    xs = [p[0] for p in live]
    ys = [p[1] for p in live]
    span = max(max(xs) - min(xs), max(ys) - min(ys))
    if span <= 0:
        return 1.0
    # Aim for a grid of roughly sqrt(n) x sqrt(n) occupied cells.
    return span / max(1.0, math.sqrt(len(live)))
