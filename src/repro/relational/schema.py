"""Schemas and attributes for the in-memory relational engine.

A dataset ``D(A1..Am)`` conforms to a local schema ``R_D(A1..Am)``
(paper, Section 2). The *universal schema* ``R_U`` is the union of the local
schemas of all source tables. Attributes are typed so the ML layer can tell
numeric features from categorical ones without sniffing values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..exceptions import SchemaError

#: Allowed attribute type tags.
NUMERIC = "numeric"
CATEGORICAL = "categorical"
_VALID_DTYPES = (NUMERIC, CATEGORICAL)


@dataclass(frozen=True, slots=True)
class Attribute:
    """A named, typed attribute of a relation.

    ``dtype`` is either :data:`NUMERIC` (values are ints/floats) or
    :data:`CATEGORICAL` (values are strings or other hashables).
    """

    name: str
    dtype: str = NUMERIC

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.dtype not in _VALID_DTYPES:
            raise SchemaError(
                f"attribute {self.name!r}: dtype must be one of {_VALID_DTYPES}, "
                f"got {self.dtype!r}"
            )

    @property
    def is_numeric(self) -> bool:
        return self.dtype == NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self.dtype == CATEGORICAL


class Schema:
    """An ordered collection of uniquely named attributes."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = list(attributes)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {dupes}")
        self._attributes: tuple[Attribute, ...] = tuple(attrs)
        self._index: dict[str, int] = {a.name: i for i, a in enumerate(attrs)}

    # -- construction helpers -------------------------------------------------
    @classmethod
    def of(cls, *specs: str | tuple[str, str] | Attribute) -> "Schema":
        """Build a schema from terse specs.

        Each spec is an :class:`Attribute`, a bare name (numeric by default),
        or a ``(name, dtype)`` pair.
        """
        attrs: list[Attribute] = []
        for spec in specs:
            if isinstance(spec, Attribute):
                attrs.append(spec)
            elif isinstance(spec, str):
                attrs.append(Attribute(spec))
            else:
                name, dtype = spec
                attrs.append(Attribute(name, dtype))
        return cls(attrs)

    # -- core protocol ---------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}; have {self.names}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        parts = ", ".join(f"{a.name}:{a.dtype[0]}" for a in self._attributes)
        return f"Schema({parts})"

    def index_of(self, name: str) -> int:
        """Positional index of ``name`` (raises :class:`SchemaError`)."""
        if name not in self._index:
            raise SchemaError(f"unknown attribute {name!r}; have {self.names}")
        return self._index[name]

    # -- algebra ---------------------------------------------------------------
    def project(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to ``names``, preserving the given order."""
        return Schema([self[name] for name in names])

    def drop(self, names: Iterable[str]) -> "Schema":
        """Schema with ``names`` removed (unknown names are an error)."""
        gone = set(names)
        for name in gone:
            self[name]  # raise for unknown names
        return Schema([a for a in self._attributes if a.name not in gone])

    def union(self, other: "Schema") -> "Schema":
        """Universal-schema union: our attributes followed by the attributes
        of ``other`` not already present.

        A name that appears in both schemas must have the same dtype.
        """
        merged = list(self._attributes)
        for attr in other:
            if attr.name in self._index:
                mine = self[attr.name]
                if mine.dtype != attr.dtype:
                    raise SchemaError(
                        f"attribute {attr.name!r} has conflicting dtypes: "
                        f"{mine.dtype} vs {attr.dtype}"
                    )
            else:
                merged.append(attr)
        return Schema(merged)

    def intersect_names(self, other: "Schema") -> tuple[str, ...]:
        """Names present in both schemas, in this schema's order."""
        return tuple(n for n in self.names if n in other)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Schema with attributes renamed via ``mapping`` (others kept)."""
        for name in mapping:
            self[name]
        return Schema(
            [Attribute(mapping.get(a.name, a.name), a.dtype) for a in self._attributes]
        )


def universal_schema(schemas: Iterable[Schema]) -> Schema:
    """The union of all local schemas — the paper's ``R_U``."""
    schemas = list(schemas)
    if not schemas:
        raise SchemaError("universal schema of zero schemas is undefined")
    result = schemas[0]
    for schema in schemas[1:]:
        result = result.union(schema)
    return result
