"""Columnar materialization: encode the universal table once, slice forever.

The valuation hot loop used to pay for the same work on every oracle call:
``materialize(bits)`` rebuilt a Python-list :class:`~repro.relational.Table`
row by row, then the oracle re-fit a fresh
:class:`~repro.ml.preprocessing.TableEncoder` over those lists. Both passes
are linear in the data but carry per-cell Python interpreter overhead, which
dwarfs the actual model training on the small tables the search visits.

:class:`ColumnStore` removes that overhead structurally. At build time each
attribute of the universal table is converted exactly once into numpy form:

* numeric attributes → a float64 column with ``NaN`` for nulls;
* categorical attributes → an int64 code column over the *universal*
  vocabulary (distinct non-null values sorted by ``repr``, matching
  ``TableEncoder``'s category ordering), with ``-1`` for nulls.

:meth:`ColumnStore.encode_subset` then serves any state as a
:class:`MatrixView` — the ``(X, y)`` pair plus the materialized shape — by
boolean-mask slicing of those precomputed columns. The encoding semantics
are *bit-identical* to fitting a fresh ``TableEncoder`` on the materialized
sub-table (the legacy oracle path):

* numeric mean/std (population, ddof=0) are computed over the subset's
  non-null values in row order, so pairwise float summation matches
  ``np.mean``/``np.std`` over the equivalent Python lists;
* categorical codes are re-ranked to the subset's vocabulary (the rank of
  each universal code among the codes present in the subset), which equals
  ``sorted(set(values), key=repr)`` because the universal vocabulary is
  itself repr-sorted; mode imputation breaks count ties toward the larger
  code, i.e. the greater ``repr`` — the exact tiebreak of
  ``max(set(values), key=lambda v: (values.count(v), repr(v)))``;
* rows with a null target are dropped from ``(X, y)`` but still count in
  ``MatrixView.shape`` and still contribute to the fit statistics, exactly
  as ``TableEncoder.fit`` sees the whole materialized table while
  ``transform`` drops null-target rows.

The parity suite (``tests/unit/test_columns.py``) asserts this equality
value-for-value across random bitmaps.

**Universal binning.** The histogram models never look at float features —
only at quantile-bin codes. Quantization is a pure per-column function, so
the store computes it *once* over the universal table (lazily, on first
request): numeric columns get ``max_bins``-quantile edges over their finite
values and a dedicated null bin (``len(edges) + 1``); categorical columns
reuse their universal vocabulary codes with null mapped to
``len(vocabulary)``. Codes are uint8 (≤ 64 bins by default). Any state's
pre-binned training matrix is then just a row-slice + column-stack of the
shared code columns — :meth:`ColumnStore.binned_matrix`, surfaced as
``MatrixView.binned``, with *zero* per-state quantile work. The Hypothesis
suite (``tests/unit/test_binned_matrix.py``) asserts slicing equals
re-binning the materialized sub-table with the universal edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..ml.base import PreBinned
from ..ml.histogram_boosting import apply_bins, quantile_bin_edges
from .table import Table

__all__ = ["ColumnStore", "MatrixView"]


@dataclass(frozen=True, slots=True)
class MatrixView:
    """One state's dataset in encoded matrix form — no intermediate Table.

    ``shape`` is the *materialized table's* shape (surviving rows including
    null-target rows, active attributes + target), which is what the
    oracle's degeneracy checks and the paper-style output sizes use; ``X``
    and ``y`` carry only the encodable rows.
    """

    X: np.ndarray
    y: np.ndarray
    #: (rows, columns) of the table this view stands in for.
    shape: tuple[int, int]
    #: active (non-target) attribute names, in schema order == X columns.
    columns: tuple[str, ...]
    target: str = ""
    #: subset target vocabulary for categorical targets (code i → label).
    target_classes: tuple | None = None
    #: the same rows as ``X`` in universal bin codes (uint8), when the
    #: caller asked for them — the zero-requantization training matrix for
    #: histogram models (see :meth:`ColumnStore.binned_matrix`).
    binned: PreBinned | None = field(default=None, compare=False)

    @property
    def nbytes(self) -> int:
        """Approximate in-memory footprint (cache accounting)."""
        total = int(self.X.nbytes + self.y.nbytes)
        if self.binned is not None:
            total += self.binned.nbytes
        return total

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_columns(self) -> int:
        return self.shape[1]

    def __repr__(self) -> str:
        return (
            f"MatrixView({self.shape[0]} rows x {self.shape[1]} cols, "
            f"X{self.X.shape})"
        )


@dataclass(slots=True)
class _NumericColumn:
    name: str
    raw: np.ndarray  # float64, NaN = null
    null: np.ndarray  # bool


@dataclass(slots=True)
class _CategoricalColumn:
    name: str
    codes: np.ndarray  # int64 universal-vocabulary codes, -1 = null
    null: np.ndarray  # bool
    vocabulary: tuple = ()  # universal code → raw value (repr-sorted)


class ColumnStore:
    """Per-attribute encoded numpy columns + null masks for one table.

    Fit once over the universal table at search-space build time; serves
    every bitmap's ``(X, y)`` by masked slicing with per-subset statistics
    recomputed vectorized (see the module docstring for why the results are
    bit-identical to the legacy per-call ``TableEncoder`` fit).
    """

    def __init__(
        self,
        table: Table,
        target: str,
        standardize: bool = True,
        max_bins: int = 64,
    ):
        if target not in table.schema:
            raise KeyError(f"target {target!r} not in schema")
        self.target = target
        self.standardize = standardize
        self.max_bins = int(max_bins)
        self.n_rows = table.num_rows
        self._columns: dict[str, _NumericColumn | _CategoricalColumn] = {}
        for attr in table.schema:
            column = self._encode_universal(table, attr.name, attr.is_numeric)
            self._columns[attr.name] = column
        self._target_numeric = table.schema[target].is_numeric
        # Universal bin codes + edges, built lazily on first binned request.
        self._binned_codes: dict[str, np.ndarray] | None = None
        self._binned_edges: dict[str, np.ndarray | None] = {}

    @staticmethod
    def _encode_universal(table: Table, name: str, numeric: bool):
        values = table._column_ref(name)
        null = np.fromiter(
            (v is None for v in values), dtype=bool, count=len(values)
        )
        if numeric:
            raw = np.array(
                [float(v) if v is not None else np.nan for v in values],
                dtype=np.float64,
            )
            return _NumericColumn(name=name, raw=raw, null=null)
        vocabulary = tuple(
            sorted({v for v in values if v is not None}, key=repr)
        )
        code_of = {v: i for i, v in enumerate(vocabulary)}
        codes = np.array(
            [code_of[v] if v is not None else -1 for v in values],
            dtype=np.int64,
        )
        return _CategoricalColumn(
            name=name, codes=codes, null=null, vocabulary=vocabulary
        )

    @property
    def nbytes(self) -> int:
        total = 0
        for col in self._columns.values():
            data = col.raw if isinstance(col, _NumericColumn) else col.codes
            total += int(data.nbytes + col.null.nbytes)
        if self._binned_codes is not None:
            total += sum(int(c.nbytes) for c in self._binned_codes.values())
        return total

    # -- universal binning -------------------------------------------------------
    def _ensure_binned(self) -> dict[str, np.ndarray]:
        """Quantize every column once over the universal table.

        Numeric columns: ``max_bins``-quantile edges over finite values
        (:func:`quantile_bin_edges` is NaN-safe), nulls to the dedicated
        null bin — exactly :func:`apply_bins` on the raw column, so a row
        slice of these codes equals re-binning the materialized sub-table
        with the same edges. Categorical columns reuse the universal
        vocabulary codes with null mapped to ``len(vocabulary)``. Codes are
        uint8 whenever they fit (always, for numeric, with ≤ 254 bins).
        """
        if self._binned_codes is not None:
            return self._binned_codes
        codes_by: dict[str, np.ndarray] = {}
        edges_by: dict[str, np.ndarray | None] = {}
        for name, col in self._columns.items():
            if isinstance(col, _NumericColumn):
                col_edges = quantile_bin_edges(
                    col.raw[:, None], self.max_bins
                )[0]
                codes = apply_bins(col.raw[:, None], [col_edges])[:, 0]
                edges_by[name] = col_edges
            else:
                codes = np.where(col.null, len(col.vocabulary), col.codes)
                edges_by[name] = None
            if codes.max(initial=0) < 256:
                codes = codes.astype(np.uint8)
            else:  # huge categorical vocabulary; keep exact codes
                codes = codes.astype(np.int32)
            codes_by[name] = codes
        self._binned_edges = edges_by
        self._binned_codes = codes_by
        return codes_by

    def bin_edges(self, name: str) -> np.ndarray | None:
        """Universal quantile edges for a numeric column (None for
        categorical columns, whose codes are vocabulary ranks)."""
        self._ensure_binned()
        return self._binned_edges[name]

    def _binned_rows(
        self, rows: np.ndarray, attributes: Sequence[str]
    ) -> PreBinned:
        codes_by = self._ensure_binned()
        cols = [codes_by[name][rows] for name in attributes]
        if cols:
            codes = np.column_stack(cols)
        else:
            codes = np.zeros((rows.size, 0), dtype=np.uint8)
        return PreBinned(codes=codes)

    def binned_matrix(
        self, row_mask: np.ndarray, attributes: Sequence[str]
    ) -> PreBinned:
        """One state's pre-binned training matrix by pure slicing.

        Same rows as :meth:`encode_subset`'s ``X`` (null-target rows
        dropped), same column order, but uint8 universal bin codes —
        no per-state quantile pass.
        """
        row_mask = np.asarray(row_mask, dtype=bool)
        rows = np.flatnonzero(row_mask & ~self._columns[self.target].null)
        return self._binned_rows(rows, attributes)

    # -- subset encoding -------------------------------------------------------
    def _encode_numeric(
        self, col: _NumericColumn, fit_mask: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Mirror of the numeric ``_ColumnCodec``: subset mean imputation,
        optional standardization with the subset's population std."""
        vals = col.raw[fit_mask & ~col.null]
        if vals.size:
            mean = float(vals.mean())
            std = float(vals.std())
        else:
            mean, std = 0.0, 1.0
        scale = std if (self.standardize and std > 1e-12) else 1.0
        center = mean if self.standardize else 0.0
        out = col.raw[rows]
        out = np.where(col.null[rows], mean, out)
        return (out - center) / scale

    def _encode_categorical(
        self, col: _CategoricalColumn, fit_mask: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Mirror of the categorical ``_ColumnCodec``: subset-ranked codes,
        mode imputation with count ties broken toward the greater repr."""
        fit_codes = col.codes[fit_mask & ~col.null]
        present = np.unique(fit_codes)  # ascending == repr order
        if present.size:
            counts = np.bincount(fit_codes, minlength=int(present[-1]) + 1)
            # max by (count, code): the largest code among max-count codes,
            # i.e. the greater repr — TableEncoder's mode tiebreak.
            best = counts[present].max()
            mode_code = int(present[counts[present] == best][-1])
            fill = float(np.searchsorted(present, mode_code))
        else:
            fill = -1.0
        sub = col.codes[rows]
        null = col.null[rows]
        ranked = np.searchsorted(present, sub).astype(np.float64)
        return np.where(null, fill, ranked)

    def encode_subset(
        self,
        row_mask: np.ndarray,
        attributes: Sequence[str],
        include_binned: bool = False,
    ) -> MatrixView:
        """The ``(X, y)`` a fresh ``TableEncoder.fit_transform`` would
        produce for the sub-table (``row_mask`` rows × ``attributes`` +
        target), without building it.

        A subset with no non-null target rows yields an empty ``X``/``y``
        (the legacy path raised mid-encode; the oracle maps both to the
        degenerate worst-case score).
        """
        row_mask = np.asarray(row_mask, dtype=bool)
        n_materialized = int(row_mask.sum())
        shape = (n_materialized, len(attributes) + 1)
        target_col = self._columns[self.target]
        keep = row_mask & ~target_col.null
        if self._target_numeric:
            rows = np.flatnonzero(keep)
            y = target_col.raw[rows]
            target_classes = None
        else:
            # Subset-ranked target codes; the materialized table's fit sees
            # exactly the non-null target values, so present == vocabulary.
            rows = np.flatnonzero(keep)
            fit_codes = target_col.codes[rows]
            present = np.unique(fit_codes)
            y = np.searchsorted(present, fit_codes).astype(np.float64)
            target_classes = tuple(
                target_col.vocabulary[int(c)] for c in present
            )
        columns = [
            self._encode_column(name, row_mask, rows) for name in attributes
        ]
        n = rows.size
        X = np.column_stack(columns) if columns else np.zeros((n, 0))
        binned = self._binned_rows(rows, attributes) if include_binned else None
        return MatrixView(
            X=X,
            y=y,
            shape=shape,
            columns=tuple(attributes),
            target=self.target,
            target_classes=target_classes,
            binned=binned,
        )

    def _encode_column(
        self, name: str, fit_mask: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        col = self._columns[name]
        if isinstance(col, _NumericColumn):
            return self._encode_numeric(col, fit_mask, rows)
        return self._encode_categorical(col, fit_mask, rows)
