"""In-memory relational engine: the substrate the MODis transducer runs on.

Public surface:

* :class:`Schema`, :class:`Attribute`, :func:`universal_schema`
* :class:`Table`
* predicates: :class:`Literal`, :class:`Conjunction`, :func:`equals`,
  :func:`in_set`, :func:`value_range`
* SPJ primitives: :func:`select`, :func:`reject`, :func:`project`,
  :func:`union_all`, :func:`inner_join`, :func:`left_outer_join`,
  :func:`full_outer_join`, :func:`universal_join`
* paper operators: :func:`augment` (⊕), :func:`augment_join`,
  :func:`reduct` (⊖), :func:`reduct_attribute`
* active domains: :func:`active_domain`, :func:`adom_sizes`,
  :func:`largest_adom`, :func:`cluster_domain`, :func:`cluster_all_domains`,
  :class:`DomainCluster`
* CSV I/O: :func:`read_csv`, :func:`read_csv_text`, :func:`write_csv`,
  :func:`to_csv_text`
* spatial joins (Example 3's augmentation): :class:`GridIndex`,
  :func:`spatial_join`, :func:`nearest_join`, :func:`spatial_augment`
"""

from .augment import (
    augment,
    augment_join,
    describe_augment,
    describe_reduct,
    reduct,
    reduct_attribute,
)
from .csvio import read_csv, read_csv_text, to_csv_text, write_csv
from .domain import (
    DomainCluster,
    active_domain,
    adom_sizes,
    cluster_all_domains,
    cluster_domain,
    largest_adom,
)
from .expressions import (
    Conjunction,
    Literal,
    Predicate,
    describe,
    equals,
    in_set,
    value_range,
)
from .join import full_outer_join, inner_join, left_outer_join, universal_join
from .operators import project, reject, select, union_all
from .schema import Attribute, CATEGORICAL, NUMERIC, Schema, universal_schema
from .spatial import (
    EUCLIDEAN,
    GridIndex,
    HAVERSINE,
    euclidean_distance,
    haversine_distance,
    nearest_join,
    spatial_augment,
    spatial_join,
)
from .columns import ColumnStore, MatrixView
from .table import Row, Table

__all__ = [
    "Attribute",
    "CATEGORICAL",
    "ColumnStore",
    "Conjunction",
    "DomainCluster",
    "EUCLIDEAN",
    "GridIndex",
    "HAVERSINE",
    "Literal",
    "MatrixView",
    "NUMERIC",
    "Predicate",
    "Row",
    "Schema",
    "Table",
    "active_domain",
    "adom_sizes",
    "augment",
    "augment_join",
    "cluster_all_domains",
    "cluster_domain",
    "describe",
    "describe_augment",
    "describe_reduct",
    "equals",
    "euclidean_distance",
    "full_outer_join",
    "haversine_distance",
    "in_set",
    "inner_join",
    "largest_adom",
    "left_outer_join",
    "nearest_join",
    "project",
    "read_csv",
    "read_csv_text",
    "reduct",
    "reduct_attribute",
    "reject",
    "select",
    "spatial_augment",
    "spatial_join",
    "to_csv_text",
    "union_all",
    "universal_join",
    "universal_schema",
    "value_range",
    "write_csv",
]
