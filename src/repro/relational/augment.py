"""The paper's two primitive operators: Augment (⊕) and Reduct (⊖).

Section 3 defines them verbatim:

* ``⊕_c(D_M, D)`` — (a) augment the schema ``R_M`` with attributes of ``D``
  not already present; (b) augment ``D_M`` with tuples from ``D`` satisfying
  the literal ``c``; (c) fill remaining cells with null.
* ``⊖_c(D_M)`` — select the tuples of ``D_M`` satisfying ``c`` and remove
  them; an attribute whose every value is masked drops out of the schema.

Both are PTIME and expressible as SPJ queries; ``augment_join`` additionally
offers the join-flavoured enrichment used in Example 3 (spatial-join style
augmentation) when the two tables share key attributes.
"""

from __future__ import annotations

from typing import Sequence

from .expressions import Predicate, describe
from .join import left_outer_join
from .operators import reject, select
from .table import Table


def augment(dm: Table, d: Table, literal: Predicate | None = None) -> Table:
    """⊕_c(D_M, D): schema union + c-matching tuples of ``D`` + null fill.

    With ``literal=None`` every tuple of ``D`` is added (the unconditional
    augmentation used when seeding a backward search).
    """
    addition = select(d, literal) if literal is not None else d
    out = dm.concat_rows(addition)
    return out.with_name(dm.name or d.name)


def augment_join(
    dm: Table,
    d: Table,
    literal: Predicate | None = None,
    on: Sequence[str] | None = None,
) -> Table:
    """Join-flavoured augmentation: left-outer-join the ``c``-filtered ``D``.

    This enriches existing tuples of ``D_M`` with the new attributes of ``D``
    (tuple-level augmentation à la the paper's spatial-join example) instead
    of appending rows. Cells without a join partner become null, exactly as
    step (c) of ⊕ requires.
    """
    addition = select(d, literal) if literal is not None else d
    return left_outer_join(dm, addition, on=on, name=dm.name or d.name)


def reduct(dm: Table, literal: Predicate) -> Table:
    """⊖_c(D_M): remove every tuple satisfying the literal ``c``.

    Attributes that end up entirely null are projected away: the state's
    ``adom_s(A) = ∅`` encoding means "A is not involved for training or
    testing M" (Section 3), which the ML layer realises by the column being
    absent.
    """
    kept = reject(dm, literal)
    dead = [
        n for n in kept.schema.names
        if kept.num_rows > 0 and all(v is None for v in kept._column_ref(n))
    ]
    if dead:
        kept = kept.drop_columns(dead)
    return kept.with_name(dm.name)


def reduct_attribute(dm: Table, attribute: str) -> Table:
    """Attribute-level reduction: mask a whole column (drop it).

    This is the bitmap "schema bit" flip of Algorithm 1 — the operator OpGen
    generates when it flips the entry recording that ``R_s`` contains ``A``.
    """
    return dm.drop_columns([attribute]).with_name(dm.name)


def describe_augment(d: Table, literal: Predicate | None) -> str:
    """Render ⊕ for logs and running-graph edges."""
    cond = describe(literal) if literal is not None else "true"
    return f"⊕[{cond}]({d.name or 'D'})"


def describe_reduct(literal: Predicate) -> str:
    """Render ⊖ for logs and running-graph edges."""
    return f"⊖[{describe(literal)}]"
