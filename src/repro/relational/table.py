"""In-memory table instances with null support.

A :class:`Table` is a structured instance conforming to a :class:`Schema`
(paper, Section 2). Missing cells hold ``None`` (the paper's ``t.A = ∅``).
Columns are stored as plain Python lists so one table can mix numeric and
categorical attributes; the ML layer converts to ``numpy`` matrices via
``repro.ml.preprocessing``.

Tables are *logically immutable*: every operation returns a new table. This
keeps the skyline search's state materialization side-effect free.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ..exceptions import SchemaError, TableError
from .schema import Attribute, Schema

Row = dict[str, Any]


class Table:
    """An immutable relational table: a schema plus equal-length columns."""

    __slots__ = ("schema", "_columns", "name")

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, Sequence[Any]] | None = None,
        name: str = "",
    ):
        self.schema = schema
        self.name = name
        cols: dict[str, list[Any]] = {}
        if columns is None:
            columns = {}
        extra = set(columns) - set(schema.names)
        if extra:
            raise TableError(f"columns not in schema: {sorted(extra)}")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise TableError(f"ragged columns: lengths {sorted(lengths)}")
        n_rows = lengths.pop() if lengths else 0
        for attr in schema:
            if attr.name in columns:
                cols[attr.name] = list(columns[attr.name])
            else:
                cols[attr.name] = [None] * n_rows
        self._columns = cols

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_rows(
        cls, schema: Schema, rows: Iterable[Mapping[str, Any]], name: str = ""
    ) -> "Table":
        """Build a table from row mappings; absent keys become nulls."""
        cols: dict[str, list[Any]] = {n: [] for n in schema.names}
        for row in rows:
            for attr_name in schema.names:
                cols[attr_name].append(row.get(attr_name))
        return cls(schema, cols, name=name)

    @classmethod
    def empty(cls, schema: Schema, name: str = "") -> "Table":
        return cls(schema, {}, name=name)

    # -- basic accessors ---------------------------------------------------------
    @property
    def num_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self.schema)

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, columns) — the paper reports output sizes in this form."""
        return (self.num_rows, self.num_columns)

    def column(self, name: str) -> list[Any]:
        """The values of attribute ``name`` (a fresh copy of the list)."""
        if name not in self.schema:
            raise SchemaError(f"unknown attribute {name!r}; have {self.schema.names}")
        return list(self._columns[name])

    def _column_ref(self, name: str) -> list[Any]:
        """Internal zero-copy column access (callers must not mutate)."""
        return self._columns[name]

    def row(self, index: int) -> Row:
        """Row ``index`` as a name -> value mapping."""
        if not 0 <= index < self.num_rows:
            raise TableError(f"row index {index} out of range [0, {self.num_rows})")
        return {n: self._columns[n][index] for n in self.schema.names}

    def rows(self) -> Iterator[Row]:
        """Iterate rows as name -> value mappings."""
        names = self.schema.names
        cols = [self._columns[n] for n in names]
        for values in zip(*cols):
            yield dict(zip(names, values))
        if not names:
            return

    def __len__(self) -> int:
        return self.num_rows

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.schema == other.schema and self._columns == other._columns

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Table{label}({self.num_rows} rows x {self.num_columns} cols)"

    # -- null accounting ---------------------------------------------------------
    def null_count(self, name: str | None = None) -> int:
        """Number of null cells in column ``name``, or in the whole table."""
        if name is not None:
            return sum(1 for v in self.column(name) if v is None)
        return sum(
            1 for col in self._columns.values() for v in col if v is None
        )

    def null_fraction(self) -> float:
        """Fraction of null cells over the whole table."""
        total = self.num_rows * self.num_columns
        if total == 0:
            return 0.0
        return self.null_count() / total

    # -- row/column algebra (all return new tables) -------------------------------
    def with_name(self, name: str) -> "Table":
        """The same table under a new name."""
        out = Table(self.schema, self._columns, name=name)
        return out

    def project(self, names: Sequence[str]) -> "Table":
        """Restrict to ``names`` (relational projection, preserving order)."""
        schema = self.schema.project(names)
        return Table(schema, {n: self._columns[n] for n in names}, name=self.name)

    def drop_columns(self, names: Sequence[str]) -> "Table":
        """Projection complement: every attribute except ``names``."""
        keep = [n for n in self.schema.names if n not in set(names)]
        for name in names:
            self.schema[name]
        return self.project(keep)

    def filter(self, predicate: Callable[[Row], bool]) -> "Table":
        """Rows where ``predicate(row)`` is truthy."""
        keep = [i for i, row in enumerate(self.rows()) if predicate(row)]
        return self.take(keep)

    def take(self, indices: Sequence[int]) -> "Table":
        """Rows at ``indices`` in the given order."""
        n = self.num_rows
        for i in indices:
            if not 0 <= i < n:
                raise TableError(f"row index {i} out of range [0, {n})")
        cols = {
            name: [col[i] for i in indices]
            for name, col in self._columns.items()
        }
        return Table(self.schema, cols, name=self.name)

    def head(self, k: int) -> "Table":
        """The first ``k`` rows."""
        return self.take(range(min(k, self.num_rows)))

    def with_column(self, attribute: Attribute, values: Sequence[Any]) -> "Table":
        """Append a new column (errors if the name already exists)."""
        if attribute.name in self.schema:
            raise SchemaError(f"attribute {attribute.name!r} already present")
        if self.num_columns and len(values) != self.num_rows:
            raise TableError(
                f"column length {len(values)} != table rows {self.num_rows}"
            )
        schema = Schema(list(self.schema.attributes) + [attribute])
        cols = dict(self._columns)
        cols[attribute.name] = list(values)
        return Table(schema, cols, name=self.name)

    def replace_column(self, name: str, values: Sequence[Any]) -> "Table":
        """Replace the values of an existing column."""
        self.schema[name]
        if len(values) != self.num_rows:
            raise TableError(
                f"column length {len(values)} != table rows {self.num_rows}"
            )
        cols = dict(self._columns)
        cols[name] = list(values)
        return Table(self.schema, cols, name=self.name)

    def rename(self, mapping: dict[str, str]) -> "Table":
        """Attributes renamed via ``mapping`` (others unchanged)."""
        schema = self.schema.rename(mapping)
        cols = {mapping.get(n, n): col for n, col in self._columns.items()}
        return Table(schema, cols, name=self.name)

    def concat_rows(self, other: "Table") -> "Table":
        """Outer union: rows of both tables under the union schema, with
        nulls where one side lacks an attribute (paper's tuple augmentation)."""
        schema = self.schema.union(other.schema)
        cols: dict[str, list[Any]] = {}
        n_self, n_other = self.num_rows, other.num_rows
        for attr in schema:
            mine = self._columns.get(attr.name, [None] * n_self)
            theirs = other._columns.get(attr.name, [None] * n_other)
            cols[attr.name] = list(mine) + list(theirs)
        return Table(schema, cols, name=self.name)

    def distinct(self) -> "Table":
        """Duplicate rows removed (nulls compare equal to each other)."""
        seen: set[tuple[Any, ...]] = set()
        keep: list[int] = []
        names = self.schema.names
        for i in range(self.num_rows):
            key = tuple(self._columns[n][i] for n in names)
            if key not in seen:
                seen.add(key)
                keep.append(i)
        return self.take(keep)

    def sort_by(self, name: str, reverse: bool = False) -> "Table":
        """Rows sorted by column ``name``; nulls sort last."""
        col = self.column(name)
        order = sorted(
            range(self.num_rows),
            key=lambda i: (col[i] is None, col[i]),
            reverse=reverse,
        )
        return self.take(order)

    def sample_rows(self, k: int, rng) -> "Table":
        """``k`` rows drawn without replacement using generator ``rng``."""
        k = min(k, self.num_rows)
        indices = rng.choice(self.num_rows, size=k, replace=False)
        return self.take([int(i) for i in indices])

    # -- summaries -----------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Shape, null fraction and per-column distinct counts."""
        return {
            "name": self.name,
            "rows": self.num_rows,
            "columns": self.num_columns,
            "null_fraction": round(self.null_fraction(), 4),
            "distinct": {
                n: len({v for v in self._columns[n] if v is not None})
                for n in self.schema.names
            },
        }
