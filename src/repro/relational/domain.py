"""Active domains and their compression into cluster literals.

``adom(A)`` is the finite set of distinct values attribute ``A`` takes across
the sources (Section 2). Section 6 explains how MODis keeps search spaces
tractable: "we applied k-means clustering over the active domain of each
attribute (with a maximum k set as 30), and derived equality literals, one
for each cluster". This module implements that compression:

* numeric attributes → 1-D k-means over distinct values, one
  :class:`DomainCluster` per non-empty cluster;
* categorical attributes → frequency-balanced grouping into at most ``k``
  clusters (k-means over value frequencies degenerates to this at 1-D).

Each cluster yields an ``A ∈ {values}`` literal usable by ⊕/⊖, and the
cluster count bounds the paper's ``|adom_m|`` factor in the cost analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..exceptions import TableError
from ..rng import make_rng
from .expressions import Literal, in_set
from .table import Table


def active_domain(table: Table, attribute: str) -> set[Any]:
    """Distinct non-null values of ``attribute`` — the paper's adom(A)."""
    return {v for v in table._column_ref(attribute) if v is not None}


def adom_sizes(table: Table) -> dict[str, int]:
    """|adom(A)| for every attribute of the table."""
    return {n: len(active_domain(table, n)) for n in table.schema.names}


def largest_adom(table: Table) -> int:
    """``|adom_m|``, the size of the largest active domain (cost analysis)."""
    sizes = adom_sizes(table)
    return max(sizes.values()) if sizes else 0


@dataclass(frozen=True, slots=True)
class DomainCluster:
    """One cluster of an attribute's active domain.

    ``values`` is the set of raw values in the cluster; ``centroid`` is the
    numeric center (or ``None`` for categorical clusters); ``label`` is a
    stable human-readable id used in bitmaps and logs.
    """

    attribute: str
    label: str
    values: frozenset
    centroid: float | None = None

    @property
    def literal(self) -> Literal:
        """The equality/cluster literal this cluster contributes to O."""
        return in_set(self.attribute, self.values)

    def __repr__(self) -> str:
        return f"DomainCluster({self.label}, |values|={len(self.values)})"


def _kmeans_1d(values: np.ndarray, k: int, seed: int) -> np.ndarray:
    """Lloyd's algorithm in one dimension; returns a label per value.

    Initialized at evenly spaced quantiles, which makes the clustering
    deterministic for a fixed input (the seed only breaks exact ties).
    """
    rng = make_rng(seed)
    k = min(k, len(np.unique(values)))
    if k <= 1:
        return np.zeros(len(values), dtype=int)
    quantiles = np.linspace(0.0, 1.0, k)
    centers = np.quantile(values, quantiles)
    centers = np.unique(centers)
    while len(centers) < k:  # duplicate quantiles: jitter deterministically
        centers = np.unique(
            np.concatenate([centers, centers[-1:] + rng.random(1)])
        )
    for _ in range(50):
        labels = np.argmin(np.abs(values[:, None] - centers[None, :]), axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = values[labels == j]
            if len(members):
                new_centers[j] = members.mean()
        if np.allclose(new_centers, centers):
            break
        centers = new_centers
    return np.argmin(np.abs(values[:, None] - centers[None, :]), axis=1)


def cluster_domain(
    table: Table,
    attribute: str,
    max_clusters: int = 30,
    seed: int = 0,
) -> list[DomainCluster]:
    """Compress ``adom(attribute)`` into at most ``max_clusters`` clusters."""
    if max_clusters < 1:
        raise TableError("max_clusters must be >= 1")
    attr = table.schema[attribute]
    domain = sorted(active_domain(table, attribute), key=repr)
    if not domain:
        return []
    if attr.is_numeric:
        values = np.asarray(sorted(float(v) for v in domain))
        labels = _kmeans_1d(values, max_clusters, seed)
        clusters: list[DomainCluster] = []
        raw_sorted = sorted(domain, key=float)
        for j in sorted(set(int(l) for l in labels)):
            members = [raw_sorted[i] for i in range(len(values)) if labels[i] == j]
            clusters.append(
                DomainCluster(
                    attribute=attribute,
                    label=f"{attribute}#c{j}",
                    values=frozenset(members),
                    centroid=float(np.mean([float(m) for m in members])),
                )
            )
        return clusters
    # Categorical: contiguous frequency-balanced groups over sorted values.
    counts = {v: 0 for v in domain}
    for v in table._column_ref(attribute):
        if v is not None:
            counts[v] += 1
    ordered = sorted(domain, key=lambda v: (-counts[v], repr(v)))
    k = min(max_clusters, len(ordered))
    groups: list[list[Any]] = [[] for _ in range(k)]
    sizes = [0] * k
    for v in ordered:  # greedy balance by total frequency
        j = int(np.argmin(sizes))
        groups[j].append(v)
        sizes[j] += counts[v]
    clusters = []
    for j, members in enumerate(g for g in groups if g):
        clusters.append(
            DomainCluster(
                attribute=attribute,
                label=f"{attribute}#c{j}",
                values=frozenset(members),
                centroid=None,
            )
        )
    return clusters


def cluster_all_domains(
    table: Table,
    max_clusters: int = 30,
    seed: int = 0,
    exclude: Sequence[str] = (),
) -> dict[str, list[DomainCluster]]:
    """Cluster every attribute's domain (skipping ``exclude``, typically the
    prediction target, which the search must never mask)."""
    skip = set(exclude)
    return {
        name: cluster_domain(table, name, max_clusters=max_clusters, seed=seed)
        for name in table.schema.names
        if name not in skip
    }
