"""Literals and predicates over table rows.

The paper's operators are parameterized by a *literal* ``c`` of the form
``A = a`` (an equality condition); Section 6 extends the operator set with
range literals ("extended operators with range queries to control |adom|")
and cluster literals derived from k-means over active domains. This module
implements all three as composable predicates with SQL-style null semantics:
any comparison against a null cell is false, so selections never surface
unknown values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from ..exceptions import ExpressionError

Row = Mapping[str, Any]

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True, slots=True)
class Literal:
    """An atomic condition ``attribute <op> value``.

    Supported operators: ``==, !=, <, <=, >, >=`` plus ``in`` whose value
    must be a frozenset (used for cluster literals over active domains).
    """

    attribute: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op != "in" and self.op not in _OPS:
            raise ExpressionError(
                f"unknown operator {self.op!r}; use one of {sorted(_OPS)} or 'in'"
            )
        if self.op == "in" and not isinstance(self.value, frozenset):
            object.__setattr__(self, "value", frozenset(self.value))

    def __call__(self, row: Row) -> bool:
        cell = row.get(self.attribute)
        if cell is None:
            return False
        if self.op == "in":
            return cell in self.value
        try:
            return _OPS[self.op](cell, self.value)
        except TypeError:
            return False

    def negate(self) -> "Literal":
        """The complementary literal (note: nulls fail both ways)."""
        flips = {"==": "!=", "!=": "==", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}
        if self.op == "in":
            raise ExpressionError("'in' literals have no single-literal negation")
        return Literal(self.attribute, flips[self.op], self.value)

    def describe(self) -> str:
        """Human-readable rendering of the literal."""
        if self.op == "in":
            values = sorted(map(repr, self.value))
            if len(values) > 4:
                values = values[:4] + ["..."]
            return f"{self.attribute} in {{{', '.join(values)}}}"
        return f"{self.attribute} {self.op} {self.value!r}"

    def __repr__(self) -> str:
        return f"Literal({self.describe()})"


def equals(attribute: str, value: Any) -> Literal:
    """The paper's canonical literal form ``A = a``."""
    return Literal(attribute, "==", value)


def in_set(attribute: str, values: Iterable[Any]) -> Literal:
    """Cluster literal: ``A ∈ {values}`` (Section 6 adom compression)."""
    return Literal(attribute, "in", frozenset(values))


def value_range(attribute: str, low: Any, high: Any) -> "Conjunction":
    """Range literal ``low <= A < high`` (Section 6 extended operators)."""
    return Conjunction(
        (Literal(attribute, ">=", low), Literal(attribute, "<", high))
    )


@dataclass(frozen=True, slots=True)
class Conjunction:
    """A conjunction of literals; true iff every literal holds."""

    literals: tuple[Literal, ...]

    def __post_init__(self) -> None:
        if not self.literals:
            raise ExpressionError("a conjunction needs at least one literal")
        object.__setattr__(self, "literals", tuple(self.literals))

    def __call__(self, row: Row) -> bool:
        return all(lit(row) for lit in self.literals)

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(l.attribute for l in self.literals))

    def describe(self) -> str:
        """Human-readable rendering of the conjunction."""
        return " AND ".join(l.describe() for l in self.literals)

    def __repr__(self) -> str:
        return f"Conjunction({self.describe()})"


Predicate = Literal | Conjunction | Callable[[Row], bool]


def describe(predicate: Predicate) -> str:
    """Human-readable rendering of any predicate form."""
    if isinstance(predicate, (Literal, Conjunction)):
        return predicate.describe()
    name = getattr(predicate, "__name__", None)
    return name or repr(predicate)
