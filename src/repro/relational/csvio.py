"""CSV round-tripping for tables.

Small, dependency-free I/O so examples can persist discovered skyline
datasets and users can feed their own tables in. Type inference follows the
schema when given, otherwise: ints/floats parse as numeric, empty cells are
nulls, everything else is categorical.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Sequence

from ..exceptions import TableError
from .schema import Attribute, Schema, CATEGORICAL, NUMERIC
from .table import Table

_NULL_TOKENS = {"", "na", "nan", "null", "none"}


def _parse_cell(text: str) -> Any:
    if text.strip().lower() in _NULL_TOKENS:
        return None
    try:
        value = float(text)
    except ValueError:
        return text
    if value.is_integer() and "." not in text and "e" not in text.lower():
        return int(value)
    return value


def _infer_schema(header: Sequence[str], rows: list[list[Any]]) -> Schema:
    attrs = []
    for j, name in enumerate(header):
        column = [row[j] for row in rows if row[j] is not None]
        numeric = bool(column) and all(isinstance(v, (int, float)) for v in column)
        attrs.append(Attribute(name, NUMERIC if numeric else CATEGORICAL))
    return Schema(attrs)


def read_csv(path: str | Path, schema: Schema | None = None, name: str = "") -> Table:
    """Load a CSV file into a :class:`Table`.

    With an explicit ``schema``, columns are coerced to it (categorical cells
    stay strings); otherwise both values and dtypes are inferred.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        return read_csv_text(fh.read(), schema=schema, name=name or path.stem)


def read_csv_text(text: str, schema: Schema | None = None, name: str = "") -> Table:
    """Parse CSV from a string (used heavily by tests)."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise TableError("CSV input is empty (no header row)") from None
    raw_rows = [
        [_parse_cell(cell) for cell in row]
        for row in reader
        if row  # skip blank lines
    ]
    for row in raw_rows:
        if len(row) != len(header):
            raise TableError(
                f"row width {len(row)} != header width {len(header)}"
            )
    if schema is None:
        schema = _infer_schema(header, raw_rows)
    else:
        for column_name in header:
            schema[column_name]
    columns: dict[str, list[Any]] = {n: [] for n in header}
    for row in raw_rows:
        for attr_name, cell in zip(header, row):
            if cell is not None and schema[attr_name].dtype == CATEGORICAL:
                cell = str(cell)
            columns[attr_name].append(cell)
    ordered = schema.project([n for n in schema.names if n in set(header)])
    return Table(ordered, {n: columns[n] for n in ordered.names}, name=name)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV; nulls render as empty cells."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.schema.names)
        for row in table.rows():
            writer.writerow(
                ["" if row[n] is None else row[n] for n in table.schema.names]
            )


def to_csv_text(table: Table) -> str:
    """Render a table as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.schema.names)
    for row in table.rows():
        writer.writerow(
            ["" if row[n] is None else row[n] for n in table.schema.names]
        )
    return buffer.getvalue()
