"""Hash joins and the multi-way universal join.

ApxMODis starts from a *universal dataset* ``D_U`` "populated by joining all
the tables (with outer join to preserve all the values besides common
attributes, by default)" (Section 5.2). :func:`universal_join` implements
exactly that: a left-deep sequence of full outer natural joins over shared
attribute names.

All joins here are hash equi-joins; null keys never match (SQL semantics).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Sequence

from ..exceptions import JoinError
from .schema import Schema
from .table import Table


def _join_keys(left: Table, right: Table, on: Sequence[str] | None) -> tuple[str, ...]:
    """Resolve join keys: explicit ``on`` or the shared attribute names."""
    if on is not None:
        keys = tuple(on)
        for key in keys:
            left.schema[key]
            right.schema[key]
        if not keys:
            raise JoinError("empty join key list")
        return keys
    shared = left.schema.intersect_names(right.schema)
    if not shared:
        raise JoinError(
            f"no shared attributes between {left.schema.names} and "
            f"{right.schema.names}; pass on=[...]"
        )
    return shared


def _merged_schema(left: Table, right: Table, keys: Sequence[str]) -> Schema:
    """Left schema followed by the right's non-key, non-duplicate attributes."""
    extra = [
        a for a in right.schema
        if a.name not in set(keys) and a.name not in left.schema
    ]
    return Schema(list(left.schema.attributes) + extra)


def _build_hash(table: Table, keys: Sequence[str]) -> dict[tuple[Any, ...], list[int]]:
    index: dict[tuple[Any, ...], list[int]] = defaultdict(list)
    cols = [table._column_ref(k) for k in keys]
    for i in range(table.num_rows):
        key = tuple(col[i] for col in cols)
        if any(v is None for v in key):
            continue  # null keys never join
        index[key].append(i)
    return index


def _emit(
    left: Table,
    right: Table,
    keys: Sequence[str],
    pairs: list[tuple[int | None, int | None]],
    name: str,
) -> Table:
    """Materialize joined rows given (left_index, right_index) pairs."""
    schema = _merged_schema(left, right, keys)
    out: dict[str, list[Any]] = {n: [] for n in schema.names}
    left_names = set(left.schema.names)
    right_extra = [
        n for n in right.schema.names if n not in set(keys) and n not in left_names
    ]
    key_cols_r = {k: right._column_ref(k) for k in keys}
    for li, ri in pairs:
        for n in left.schema.names:
            if li is not None:
                out[n].append(left._column_ref(n)[li])
            elif n in key_cols_r and ri is not None:
                # right-only row: keys come from the right side
                out[n].append(key_cols_r[n][ri])
            else:
                out[n].append(None)
        for n in right_extra:
            out[n].append(right._column_ref(n)[ri] if ri is not None else None)
    return Table(schema, out, name=name)


def inner_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str = ""
) -> Table:
    """Hash equi-join keeping only matching row pairs."""
    keys = _join_keys(left, right, on)
    index = _build_hash(right, keys)
    key_cols = [left._column_ref(k) for k in keys]
    pairs: list[tuple[int | None, int | None]] = []
    for i in range(left.num_rows):
        key = tuple(col[i] for col in key_cols)
        if any(v is None for v in key):
            continue
        for j in index.get(key, ()):
            pairs.append((i, j))
    return _emit(left, right, keys, pairs, name or left.name)


def left_outer_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str = ""
) -> Table:
    """All left rows; right attributes null where no match exists."""
    keys = _join_keys(left, right, on)
    index = _build_hash(right, keys)
    key_cols = [left._column_ref(k) for k in keys]
    pairs: list[tuple[int | None, int | None]] = []
    for i in range(left.num_rows):
        key = tuple(col[i] for col in key_cols)
        matches = index.get(key, ()) if not any(v is None for v in key) else ()
        if matches:
            for j in matches:
                pairs.append((i, j))
        else:
            pairs.append((i, None))
    return _emit(left, right, keys, pairs, name or left.name)


def full_outer_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str = ""
) -> Table:
    """All rows of both sides; unmatched attributes become null."""
    keys = _join_keys(left, right, on)
    index = _build_hash(right, keys)
    key_cols = [left._column_ref(k) for k in keys]
    pairs: list[tuple[int | None, int | None]] = []
    matched_right: set[int] = set()
    for i in range(left.num_rows):
        key = tuple(col[i] for col in key_cols)
        matches = index.get(key, ()) if not any(v is None for v in key) else ()
        if matches:
            for j in matches:
                pairs.append((i, j))
                matched_right.add(j)
        else:
            pairs.append((i, None))
    for j in range(right.num_rows):
        if j not in matched_right:
            pairs.append((None, j))
    return _emit(left, right, keys, pairs, name or left.name)


def universal_join(tables: Sequence[Table], name: str = "D_U") -> Table:
    """The paper's universal dataset ``D_U``.

    Sequential full outer natural joins over shared attribute names. Tables
    sharing no attribute with the accumulated result are deferred and retried
    after others join (so join order does not silently drop sources); if a
    table never connects, its rows are appended via outer union, preserving
    all attribute values as the paper requires.
    """
    if not tables:
        raise JoinError("universal join of zero tables is undefined")
    remaining = list(tables[1:])
    result = tables[0]
    progress = True
    while remaining and progress:
        progress = False
        still: list[Table] = []
        for table in remaining:
            if result.schema.intersect_names(table.schema):
                result = full_outer_join(result, table)
                progress = True
            else:
                still.append(table)
        remaining = still
    for table in remaining:  # disconnected sources: outer union
        result = result.concat_rows(table)
    return result.with_name(name)
