"""Deterministic random-number utilities.

The paper restricts attention to *fixed, deterministic* models (Section 2):
for a fixed input the computation never changes. Every stochastic component
in this library therefore draws randomness from an explicitly seeded
:class:`numpy.random.Generator` created here, and derived streams are spawned
with stable integer keys so that adding a new consumer never perturbs the
streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 7


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy`` Generator for ``seed``.

    Accepts ``None`` (library default seed), an integer, or an existing
    generator (returned unchanged, which lets internal helpers accept either
    form without re-seeding).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(int(seed))


def derive_seed(seed: int, *keys: str | int) -> int:
    """Derive a stable child seed from ``seed`` and a sequence of keys.

    Uses SHA-256 over the rendered keys, so the mapping is stable across
    processes and Python versions (unlike ``hash``).
    """
    text = repr((int(seed),) + tuple(str(k) for k in keys)).encode()
    digest = hashlib.sha256(text).digest()
    return int.from_bytes(digest[:8], "little") % (2**63 - 1)


def spawn_rng(seed: int, *keys: str | int) -> np.random.Generator:
    """Return a generator seeded by :func:`derive_seed` of ``seed`` + keys."""
    return np.random.default_rng(derive_seed(seed, *keys))
