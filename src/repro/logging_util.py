"""Library-wide logging helpers.

The library logs under the ``repro`` namespace and never configures the root
logger (that is the application's job). ``enable_console_logging`` is a small
convenience used by the example scripts, the benchmark harness, and
``repro serve``.

**Log correlation.** Service code wraps job execution in
:func:`log_context`, which stores ``job_id``/``shard_index``/
``scheduler_id`` in a :mod:`contextvars` variable; :class:`ContextFilter`
(attached to every handler this module creates) copies whatever is
current onto each :class:`logging.LogRecord`, so a multi-scheduler log
stream is grep-able by job no matter which thread or subsystem emitted
the line. With ``json_lines=True`` the handler formats records as one
JSON object per line (``ts``/``level``/``logger``/``message`` plus any
context fields), ready for ingestion.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import logging
import time
from typing import Any, Iterator

LIBRARY_LOGGER_NAME = "repro"

#: Record attributes injected by :class:`ContextFilter` (always present
#: on filtered records, ``None`` when no context is active).
CONTEXT_FIELDS = ("job_id", "shard_index", "scheduler_id")

_log_context: contextvars.ContextVar[dict[str, Any]] = contextvars.ContextVar(
    "repro_log_context", default={}
)


@contextlib.contextmanager
def log_context(**fields: Any) -> Iterator[None]:
    """Bind correlation fields to every log record in the with-block.

    Nested contexts merge (inner wins per key); fields bound to ``None``
    are dropped so e.g. ``shard_index=None`` on an ordinary job does not
    show up in JSON output.
    """
    merged = dict(_log_context.get())
    for key, value in fields.items():
        if value is None:
            merged.pop(key, None)
        else:
            merged[key] = value
    token = _log_context.set(merged)
    try:
        yield
    finally:
        _log_context.reset(token)


def current_log_context() -> dict[str, Any]:
    """The correlation fields currently bound (a copy)."""
    return dict(_log_context.get())


class ContextFilter(logging.Filter):
    """Copies the current :func:`log_context` fields onto each record."""

    def filter(self, record: logging.LogRecord) -> bool:
        context = _log_context.get()
        for field in CONTEXT_FIELDS:
            if not hasattr(record, field):
                setattr(record, field, context.get(field))
        for key, value in context.items():
            if key not in CONTEXT_FIELDS and not hasattr(record, key):
                setattr(record, key, value)
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per line; context fields ride along when bound."""

    def format(self, record: logging.LogRecord) -> str:
        entry: dict[str, Any] = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.localtime(record.created)
            ),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for field in CONTEXT_FIELDS:
            value = getattr(record, field, None)
            if value is not None:
                entry[field] = value
        if record.exc_info:
            entry["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(entry, default=str)


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a child logger of the library's namespace logger."""
    if not name:
        return logging.getLogger(LIBRARY_LOGGER_NAME)
    if name.startswith(LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{LIBRARY_LOGGER_NAME}.{name}")


def enable_console_logging(
    level: int = logging.INFO, json_lines: bool = False
) -> logging.Handler:
    """Attach a stream handler to the library logger and return it.

    Idempotent: repeated calls reuse the existing handler (re-formatting
    it if ``json_lines`` changed). ``json_lines=True`` switches to the
    :class:`JsonFormatter`; either way the handler carries a
    :class:`ContextFilter`, so ``%(job_id)s``-style fields are available.
    """
    logger = get_logger()
    handler = next(
        (h for h in logger.handlers if getattr(h, "_repro_console", False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler()
        handler._repro_console = True  # type: ignore[attr-defined]
        handler.addFilter(ContextFilter())
        logger.addHandler(handler)
    handler.setFormatter(
        JsonFormatter()
        if json_lines
        else logging.Formatter(
            "%(asctime)s %(name)s %(levelname)s: %(message)s"
        )
    )
    handler.setLevel(level)
    logger.setLevel(level)
    return handler
