"""Library-wide logging helpers.

The library logs under the ``repro`` namespace and never configures the root
logger (that is the application's job). ``enable_console_logging`` is a small
convenience used by the example scripts and the benchmark harness.
"""

from __future__ import annotations

import logging

LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a child logger of the library's namespace logger."""
    if not name:
        return logging.getLogger(LIBRARY_LOGGER_NAME)
    if name.startswith(LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{LIBRARY_LOGGER_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stream handler to the library logger and return it.

    Idempotent: repeated calls reuse the existing handler.
    """
    logger = get_logger()
    for handler in logger.handlers:
        if getattr(handler, "_repro_console", False):
            handler.setLevel(level)
            logger.setLevel(level)
            return handler
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    handler._repro_console = True  # type: ignore[attr-defined]
    handler.setLevel(level)
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
