"""Uniform baseline runner against a :class:`DiscoveryTask`.

The evaluation tables (Tables 4 & 6) compare MODis variants against METAM,
METAM-MO, Starmie, SkSFM and H2O on the *same* task. This module runs any
of them from a task object and returns the single output table, so the
benchmark harness can score every method with the identical oracle.
"""

from __future__ import annotations

from typing import Callable

from ..datalake.tasks import DiscoveryTask
from ..exceptions import DiscoveryError
from ..relational.table import Table
from .feature_selection import H2OFS, SkSFM
from .hydragan import HydraGANLike
from .metam import METAM, METAMMO
from .starmie import Starmie


def _base_and_candidates(task: DiscoveryTask) -> tuple[Table, list[Table]]:
    """Augmentation starting point and joinable lake candidates.

    Matches the paper's setting: the baselines start from the task's input
    dataset (the universal table — the 'Original' row of Tables 4/6) and
    may join additional lake tables that are *not* part of it (the corpus'
    auxiliary tables). For hand-built tasks without auxiliary tables, fall
    back to base-table + sibling-sources discovery.
    """
    if task.corpus is not None and task.corpus.auxiliary:
        return task.universal, list(task.corpus.auxiliary)
    base = None
    candidates = []
    for table in task.sources:
        if task.target in table.schema and base is None:
            base = table
        else:
            candidates.append(table)
    if base is None:
        raise DiscoveryError(f"no source of task {task.name} carries the target")
    return base, candidates


def run_metam(task: DiscoveryTask, utility: str | None = None) -> Table:
    """METAM optimizing a single measure (the task's decisive by default —
    the paper "choose[s] the same measure for each task as the utility")."""
    base, candidates = _base_and_candidates(task)
    method = METAM(
        task.oracle,
        task.measures,
        utility_measure=utility or task.primary or task.measures.decisive.name,
    )
    return method.run(base, candidates).table


def run_metam_mo(task: DiscoveryTask) -> Table:
    """METAM-MO with uniform weights over the task's measure set."""
    base, candidates = _base_and_candidates(task)
    method = METAMMO(task.oracle, task.measures)
    return method.run(base, candidates).table


def run_starmie(task: DiscoveryTask, top_j: int = 3) -> Table:
    """Starmie-style union search: augment with the top-j unionable tables."""
    base, candidates = _base_and_candidates(task)
    return Starmie(top_j=top_j).run(base, candidates).table


def run_sksfm(task: DiscoveryTask) -> Table:
    """SelectFromModel-style feature selection with the task's model."""
    method = SkSFM(model_name=task.model_name, seed=task.seed)
    return method.run(task.universal, task.target).table


def run_h2o(task: DiscoveryTask) -> Table:
    """H2O-style feature selection via a linear proxy model."""
    kind = task.corpus.spec.task if task.corpus else "regression"
    method = H2OFS(task_kind=kind, seed=task.seed)
    return method.run(task.universal, task.target).table


def run_hydragan(task: DiscoveryTask, n_rows: int = 100) -> Table:
    """HydraGAN-style generative augmentation with n_rows synthetic rows."""
    method = HydraGANLike(n_rows=n_rows, seed=task.seed)
    return method.run(task.universal, task.target).table


BASELINES: dict[str, Callable[[DiscoveryTask], Table]] = {
    "METAM": run_metam,
    "METAM-MO": run_metam_mo,
    "Starmie": run_starmie,
    "SkSFM": run_sksfm,
    "H2O": run_h2o,
}


def run_baseline(task: DiscoveryTask, name: str) -> Table:
    """Run a named baseline (tabular tasks only)."""
    if task.kind != "tabular":
        raise DiscoveryError("baselines are defined for tabular tasks only")
    if name not in BASELINES:
        raise DiscoveryError(f"unknown baseline {name!r}; have {sorted(BASELINES)}")
    return BASELINES[name](task)
