"""METAM and METAM-MO — goal-oriented data discovery baselines.

METAM (Galhotra et al., ICDE 2023, the paper's reference [14]) performs
goal-oriented discovery: starting from a base table that carries the
prediction target, it repeatedly *joins* candidate tables and keeps a join
exactly when it improves a single downstream utility score. The paper's
extension METAM-MO folds multiple measures into one linear weighted utility.

Both output a single augmented table (baselines "output a single table",
Exp-1), never remove rows, and pay training time for every accuracy gain —
the trade-off the paper contrasts MODis against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..core.measures import MeasureSet
from ..exceptions import DiscoveryError
from ..relational.join import left_outer_join
from ..relational.table import Table

#: table -> raw measure values (the same oracle signature tasks provide).
Oracle = Callable[[Table], dict[str, float]]


@dataclass
class METAMResult:
    """Output table plus the audit trail of accepted/rejected joins."""

    table: Table
    utility: float
    accepted: list[str] = field(default_factory=list)
    rejected: list[str] = field(default_factory=list)
    oracle_calls: int = 0


class METAM:
    """Greedy goal-oriented join discovery on a single utility measure.

    ``utility_measure`` names the measure to optimize; the utility of a
    table is its *normalized, minimize-me* value, so lower is better and
    improvements must exceed ``min_gain``.
    """

    def __init__(
        self,
        oracle: Oracle,
        measures: MeasureSet,
        utility_measure: str,
        min_gain: float = 1e-4,
        max_joins: int | None = None,
    ):
        if utility_measure not in measures:
            raise DiscoveryError(
                f"utility measure {utility_measure!r} not in {measures.names}"
            )
        self.oracle = oracle
        self.measures = measures
        self.utility_measure = utility_measure
        self.min_gain = float(min_gain)
        self.max_joins = max_joins

    def _utility(self, table: Table) -> float:
        raw = self.oracle(table)
        return self._combine(raw)

    def _combine(self, raw: Mapping[str, float]) -> float:
        measure = self.measures[self.utility_measure]
        return measure.normalize(raw[self.utility_measure])

    def run(self, base: Table, candidates: list[Table]) -> METAMResult:
        """Greedily join candidates while the utility improves."""
        current = base
        result = METAMResult(table=base, utility=0.0)
        best_utility = self._utility(current)
        result.oracle_calls += 1
        remaining = list(candidates)
        joins_done = 0
        improved = True
        while improved and remaining:
            if self.max_joins is not None and joins_done >= self.max_joins:
                break
            improved = False
            best_candidate = None
            best_candidate_utility = best_utility
            best_joined: Table | None = None
            for candidate in remaining:
                if not current.schema.intersect_names(candidate.schema):
                    continue  # not joinable
                joined = left_outer_join(current, candidate)
                utility = self._utility(joined)
                result.oracle_calls += 1
                if utility < best_candidate_utility - self.min_gain:
                    best_candidate = candidate
                    best_candidate_utility = utility
                    best_joined = joined
            if best_candidate is not None:
                current = best_joined
                best_utility = best_candidate_utility
                remaining.remove(best_candidate)
                result.accepted.append(best_candidate.name or "candidate")
                joins_done += 1
                improved = True
        result.rejected = [t.name or "candidate" for t in remaining]
        result.table = current
        result.utility = best_utility
        return result


class METAMMO(METAM):
    """METAM-MO: the paper's multi-objective extension via a linear
    weighted sum of all normalized measures (uniform weights by default)."""

    def __init__(
        self,
        oracle: Oracle,
        measures: MeasureSet,
        weights: Mapping[str, float] | None = None,
        min_gain: float = 1e-4,
        max_joins: int | None = None,
    ):
        super().__init__(
            oracle,
            measures,
            utility_measure=measures.names[0],
            min_gain=min_gain,
            max_joins=max_joins,
        )
        if weights is None:
            weights = {name: 1.0 for name in measures.names}
        unknown = set(weights) - set(measures.names)
        if unknown:
            raise DiscoveryError(f"weights for unknown measures: {sorted(unknown)}")
        total = sum(weights.values())
        if total <= 0:
            raise DiscoveryError("weights must sum to a positive value")
        self.weights = {k: v / total for k, v in weights.items()}

    def _combine(self, raw: Mapping[str, float]) -> float:
        return sum(
            self.weights.get(m.name, 0.0) * m.normalize(raw[m.name])
            for m in self.measures
        )
