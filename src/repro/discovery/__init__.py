"""Data-discovery baselines the paper compares MODis against."""

from .feature_selection import H2OFS, SelectionResult, SkSFM
from .hydragan import HydraGANLike, HydraGANResult
from .metam import METAM, METAMMO, METAMResult
from .runner import (
    BASELINES,
    run_baseline,
    run_h2o,
    run_hydragan,
    run_metam,
    run_metam_mo,
    run_sksfm,
    run_starmie,
)
from .starmie import ColumnSketch, Starmie, StarmieResult, table_similarity

__all__ = [
    "BASELINES",
    "ColumnSketch",
    "H2OFS",
    "HydraGANLike",
    "HydraGANResult",
    "METAM",
    "METAMMO",
    "METAMResult",
    "SelectionResult",
    "SkSFM",
    "Starmie",
    "StarmieResult",
    "run_baseline",
    "run_h2o",
    "run_hydragan",
    "run_metam",
    "run_metam_mo",
    "run_sksfm",
    "run_starmie",
    "table_similarity",
]
