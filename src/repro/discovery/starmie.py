"""Starmie-like table-union search via column-signature similarity.

Starmie (Fan et al., VLDB 2023, the paper's reference [12]) discovers
unionable/joinable tables in a data lake with contrastive column
embeddings. Offline we substitute the learned embeddings with deterministic
*column sketches* — value-overlap (Jaccard over sampled distinct values)
plus lightweight distribution statistics — which rank candidate tables the
same way at this scale: columns drawn from the same underlying domain score
high, unrelated columns score low.

The search joins the top-ranked candidates onto the base table and outputs
a single enriched table, with no downstream-model feedback — exactly the
behaviour the paper contrasts: more columns, better accuracy than raw data,
but training cost grows and irrelevant columns slip in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import DiscoveryError
from ..relational.join import left_outer_join
from ..relational.schema import Schema
from ..relational.table import Table


@dataclass(frozen=True, slots=True)
class ColumnSketch:
    """A cheap stand-in for a contrastive column embedding."""

    name: str
    is_numeric: bool
    sample: frozenset
    mean: float
    std: float

    def similarity(self, other: "ColumnSketch") -> float:
        """Blend of value overlap and distribution closeness in [0, 1]."""
        if self.is_numeric != other.is_numeric:
            return 0.0
        union = self.sample | other.sample
        jaccard = len(self.sample & other.sample) / len(union) if union else 0.0
        if not self.is_numeric:
            return jaccard
        scale = max(abs(self.std), abs(other.std), 1e-9)
        closeness = float(
            np.exp(-abs(self.mean - other.mean) / scale)
            * np.exp(-abs(self.std - other.std) / scale)
        )
        return 0.5 * jaccard + 0.5 * closeness


def sketch_column(table: Table, name: str, sample_size: int = 64) -> ColumnSketch:
    """Deterministic sketch of one column (sorted-sample, moments)."""
    attr = table.schema[name]
    values = [v for v in table._column_ref(name) if v is not None]
    sample = frozenset(sorted(set(values), key=repr)[:sample_size])
    if attr.is_numeric and values:
        arr = np.asarray([float(v) for v in values])
        mean, std = float(arr.mean()), float(arr.std())
    else:
        mean, std = 0.0, 0.0
    return ColumnSketch(
        name=name, is_numeric=attr.is_numeric, sample=sample, mean=mean, std=std
    )


def table_sketches(table: Table) -> list[ColumnSketch]:
    """One sketch per column of the table."""
    return [sketch_column(table, n) for n in table.schema.names]


def table_similarity(base: Table, candidate: Table) -> float:
    """Max-bipartite column-similarity score (greedy matching).

    Mirrors Starmie's table-level aggregation of column scores: each base
    column matches its most similar candidate column; the table score is
    the mean of the matched scores.
    """
    base_sketches = table_sketches(base)
    cand_sketches = table_sketches(candidate)
    if not base_sketches or not cand_sketches:
        return 0.0
    scores = []
    for sketch in base_sketches:
        best = max(sketch.similarity(other) for other in cand_sketches)
        scores.append(best)
    return float(np.mean(scores))


@dataclass
class StarmieResult:
    table: Table
    ranked: list[tuple[str, float]] = field(default_factory=list)
    joined: list[str] = field(default_factory=list)


class Starmie:
    """Union-search baseline: rank by sketch similarity, join top-j."""

    def __init__(self, top_j: int = 3, min_similarity: float = 0.05):
        if top_j < 1:
            raise DiscoveryError("top_j must be >= 1")
        self.top_j = top_j
        self.min_similarity = float(min_similarity)

    def run(self, base: Table, candidates: list[Table]) -> StarmieResult:
        """Augment ``base`` with its top-j most unionable candidate tables."""
        ranked = sorted(
            (
                (candidate, table_similarity(base, candidate))
                for candidate in candidates
            ),
            key=lambda pair: -pair[1],
        )
        result = StarmieResult(
            table=base,
            ranked=[(c.name or "candidate", round(s, 4)) for c, s in ranked],
        )
        current = base
        for candidate, similarity in ranked[: self.top_j]:
            if similarity < self.min_similarity:
                break
            if not current.schema.intersect_names(candidate.schema):
                continue
            current = left_outer_join(current, candidate)
            result.joined.append(candidate.name or "candidate")
        result.table = current
        return result


def union_candidates(base: Table, candidates: list[Table]) -> Schema:
    """The union schema Starmie's output would cover (introspection)."""
    schema = base.schema
    for candidate in candidates:
        schema = schema.union(candidate.schema)
    return schema
