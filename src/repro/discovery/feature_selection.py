"""Feature-selection baselines: SkSFM and the H2O-style linear selector.

* ``SkSFM`` mirrors scikit-learn's ``SelectFromModel``: fit the task's own
  model once on the full table and keep the features whose importance
  reaches the mean importance (sklearn's default threshold).
* ``H2OFS`` mirrors the H2O AutoML feature-selection module the paper uses:
  "fits features and predictors into a linear model" — we standardize,
  fit a linear/logistic model, and keep features whose |coefficient| is at
  least the mean magnitude.

Both output a single column-reduced table: cheaper training, typically at
an accuracy cost — the opposite corner of the trade-off from the
augmentation baselines, exactly as the paper's Exp-1 discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import DiscoveryError
from ..ml.base import Model
from ..ml.linear import LinearRegression, LogisticRegression
from ..ml.preprocessing import TableEncoder
from ..ml.registry import make_model
from ..relational.table import Table


@dataclass
class SelectionResult:
    table: Table
    kept: list[str] = field(default_factory=list)
    dropped: list[str] = field(default_factory=list)
    scores: dict[str, float] = field(default_factory=dict)


def _project_selected(table: Table, target: str, kept: list[str]) -> Table:
    """Project onto kept features + target, preserving schema order."""
    names = [n for n in table.schema.names if n in set(kept) or n == target]
    return table.project(names)


class SkSFM:
    """SelectFromModel with the task's own estimator's importances."""

    def __init__(self, model_name: str, threshold: str | float = "mean",
                 seed: int = 0):
        self.model_name = model_name
        self.threshold = threshold
        self.seed = seed

    def run(self, table: Table, target: str) -> SelectionResult:
        """Select features by model-importance threshold (SelectFromModel)."""
        encoder = TableEncoder(target=target)
        X, y = encoder.fit_transform(table)
        model: Model = make_model(self.model_name, seed=self.seed)
        model.fit(X, y)
        importances = getattr(model, "feature_importances_", None)
        if importances is None:
            # SelectFromModel's fallback: |coefficients| for linear models.
            coef = getattr(model, "coef_", None)
            if coef is None:
                raise DiscoveryError(
                    f"model {self.model_name!r} exposes neither "
                    "feature_importances_ nor coef_"
                )
            coef = np.asarray(coef, dtype=float)
            importances = np.abs(coef) if coef.ndim == 1 else np.abs(coef).max(axis=1)
        importances = np.asarray(importances, dtype=float)
        if self.threshold == "mean":
            cut = float(importances.mean())
        elif self.threshold == "median":
            cut = float(np.median(importances))
        else:
            cut = float(self.threshold)
        names = list(encoder.feature_names_)
        kept = [n for n, imp in zip(names, importances) if imp >= cut]
        if not kept:  # never emit a featureless table
            kept = [names[int(np.argmax(importances))]]
        dropped = [n for n in names if n not in set(kept)]
        return SelectionResult(
            table=_project_selected(table, target, kept),
            kept=kept,
            dropped=dropped,
            scores={n: float(v) for n, v in zip(names, importances)},
        )


class H2OFS:
    """H2O-style selection: linear model coefficients on standardized data."""

    def __init__(self, task_kind: str = "regression", seed: int = 0,
                 threshold: str | float = "mean"):
        if task_kind not in ("regression", "classification"):
            raise DiscoveryError(f"unknown task kind {task_kind!r}")
        self.task_kind = task_kind
        self.seed = seed
        self.threshold = threshold

    def run(self, table: Table, target: str) -> SelectionResult:
        """Select features by linear-proxy coefficient magnitude (H2O style)."""
        encoder = TableEncoder(target=target, standardize=True)
        X, y = encoder.fit_transform(table)
        if self.task_kind == "regression":
            model = LinearRegression(l2=1e-4, seed=self.seed)
            model.fit(X, y)
            weights = np.abs(np.asarray(model.coef_, dtype=float))
        else:
            model = LogisticRegression(n_iter=200, seed=self.seed)
            model.fit(X, y)
            weights = np.abs(np.asarray(model.coef_, dtype=float)).max(axis=1)
        if self.threshold == "mean":
            cut = float(weights.mean())
        elif self.threshold == "median":
            cut = float(np.median(weights))
        else:
            cut = float(self.threshold)
        names = list(encoder.feature_names_)
        kept = [n for n, w in zip(names, weights) if w >= cut]
        if not kept:
            kept = [names[int(np.argmax(weights))]]
        dropped = [n for n in names if n not in set(kept)]
        return SelectionResult(
            table=_project_selected(table, target, kept),
            kept=kept,
            dropped=dropped,
            scores={n: float(w) for n, w in zip(names, weights)},
        )
