"""HydraGAN-like generative augmentation baseline.

The paper compares against HydraGAN (DeSmet & Cook, 2024), a cooperative
multi-agent GAN that *synthesizes* rows for multi-objective data
generation. A GAN is neither trainable offline here nor necessary for the
comparison the paper draws — that synthetic rows "cannot utilize verified
external data sources, and synthetic data often lacks inherent reliability"
— so we substitute the closest classical generative model: a per-column
Gaussian/multinomial sampler with correlation preserved through a Gaussian
copula over the numeric columns. The baseline appends ``n_rows`` sampled
rows to the input table, mimicking HydraGAN's fixed-schema, row-generation
behaviour (its accuracy degrades as more synthetic rows are added — the
paper's observation we reproduce in the Table 4 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DiscoveryError
from ..relational.table import Table
from ..rng import make_rng


@dataclass
class HydraGANResult:
    table: Table
    n_synthetic: int


class HydraGANLike:
    """Gaussian-copula row synthesizer over a fixed schema."""

    def __init__(self, n_rows: int = 100, seed: int = 0):
        if n_rows < 1:
            raise DiscoveryError("n_rows must be >= 1")
        self.n_rows = int(n_rows)
        self.seed = int(seed)

    def run(self, table: Table, target: str) -> HydraGANResult:
        """Synthesize n_rows rows from the fitted per-column generator."""
        if table.num_rows < 5:
            raise DiscoveryError("need at least 5 rows to fit the generator")
        rng = make_rng(self.seed)
        numeric = [a.name for a in table.schema if a.is_numeric]
        categorical = [a.name for a in table.schema if a.is_categorical]

        # Fit: empirical mean/cov over mean-imputed numeric columns,
        # empirical frequencies for categorical columns.
        matrix = []
        for name in numeric:
            values = np.array(
                [float(v) if v is not None else np.nan for v in table._column_ref(name)]
            )
            mean = float(np.nanmean(values)) if not np.all(np.isnan(values)) else 0.0
            values = np.where(np.isnan(values), mean, values)
            matrix.append(values)
        synthetic: dict[str, list] = {}
        if matrix:
            stacked = np.stack(matrix, axis=1)
            mean = stacked.mean(axis=0)
            cov = np.cov(stacked, rowvar=False)
            cov = np.atleast_2d(cov) + 1e-6 * np.eye(len(numeric))
            draws = rng.multivariate_normal(mean, cov, size=self.n_rows)
            for j, name in enumerate(numeric):
                synthetic[name] = [float(v) for v in draws[:, j]]
        for name in categorical:
            observed = [v for v in table._column_ref(name) if v is not None]
            if not observed:
                synthetic[name] = [None] * self.n_rows
                continue
            values, counts = np.unique(np.array(observed, dtype=object),
                                       return_counts=True)
            probs = counts / counts.sum()
            picks = rng.choice(len(values), size=self.n_rows, p=probs)
            synthetic[name] = [values[int(i)] for i in picks]

        rows = [
            {name: synthetic[name][i] for name in table.schema.names}
            for i in range(self.n_rows)
        ]
        addition = Table.from_rows(table.schema, rows, name="synthetic")
        combined = table.concat_rows(addition)
        return HydraGANResult(table=combined, n_synthetic=self.n_rows)
